open Chainsim

type spec = { parties : int; params : Params.t; p_star : float }

let make ?(parties = 3) ?p_star (params : Params.t) =
  if parties < 2 then invalid_arg "Multihop.make: requires >= 2 parties";
  let p_star = Option.value ~default:params.Params.p0 p_star in
  { parties; params; p_star }

let tau spec = spec.params.Params.tau_b
let eps spec = spec.params.Params.eps_b
let lock_phase_hours spec = float_of_int spec.parties *. tau spec

(* Claim on chain j is submitted at n tau + (n-1-j) eps and confirms one
   tau later; the expiry is set exactly there (Herlihy's staggering:
   deadlines grow toward the leader's outgoing chain 0). *)
let claim_submit_time spec j =
  lock_phase_hours spec
  +. (float_of_int (spec.parties - 1 - j) *. eps spec)

let expiry_schedule spec =
  Array.init spec.parties (fun j -> claim_submit_time spec j +. tau spec)

let total_success_hours spec = claim_submit_time spec 0 +. tau spec

type outcome =
  | Success
  | Abort_at_lock of int
  | Abort_no_reveal
  | Anomalous of string

type result = {
  outcome : outcome;
  deltas : (float * float) array;
  trace : (float * string) list;
}

let party_name i = Printf.sprintf "party%d" i
let contract_name i = Printf.sprintf "hop:%d" i

let run ?(decisions = fun _i ~price:_ -> Agent.Cont) ?(offline = [])
    ?(price_paths = fun _i _t -> 2.) ?(seed = 0xcafe) spec =
  let n = spec.parties in
  let trace = ref [] in
  let log t msg = trace := (t, msg) :: !trace in
  let online i at =
    not (List.exists (fun (j, from) -> j = i && at >= from) offline)
  in
  let chains =
    Array.init n (fun i ->
        Chain.create
          ~name:(Printf.sprintf "chain%d" i)
          ~token:(Printf.sprintf "asset%d" i)
          ~tau:(tau spec) ~mempool_delay:(eps spec) ())
  in
  Array.iteri
    (fun i chain -> Chain.mint chain ~account:(party_name i) ~amount:1.)
    chains;
  let secret = Secret.generate (Numerics.Rng.create ~seed ()) in
  let expiries = expiry_schedule spec in
  let horizon =
    expiries.(0) +. (2. *. tau spec) +. 1.
  in
  let finish outcome =
    Array.iter (fun c -> ignore (Chain.advance c ~until:horizon)) chains;
    let deltas =
      Array.init n (fun i ->
          let outgoing =
            Chain.balance chains.(i) ~account:(party_name i) -. 1.
          in
          let incoming =
            Chain.balance chains.((i - 1 + n) mod n) ~account:(party_name i)
          in
          (outgoing, incoming))
    in
    { outcome; deltas; trace = List.rev !trace }
  in
  (* Lock phase: party i locks asset_i for party i+1 at time i tau,
     after the previous leg confirmed. *)
  let rec lock_phase i =
    if i = n then None
    else begin
      let at = float_of_int i *. tau spec in
      let price = price_paths i at in
      let decision =
        if not (online i at) then begin
          log at (Printf.sprintf "%s offline: no lock" (party_name i));
          Agent.Stop
        end
        else if i = 0 then
          (* The leader's strategic choice is the reveal; initiating the
             cycle is taken as given (like Alice's t1 in the 2-party
             game). *)
          Agent.Cont
        else decisions i ~price
      in
      match decision with
      | Agent.Stop ->
        log at (Printf.sprintf "%s declines to lock (price %g)" (party_name i) price);
        Some i
      | Agent.Cont ->
        log at (Printf.sprintf "%s locks asset%d for %s" (party_name i) i
                  (party_name ((i + 1) mod n)));
        ignore
          (Chain.submit chains.(i) ~at
             (Tx.Htlc_lock
                {
                  contract_id = contract_name i;
                  sender = party_name i;
                  recipient = party_name ((i + 1) mod n);
                  amount = 1.;
                  hash = secret.Secret.hash;
                  expiry = expiries.(i);
                }));
        ignore (Chain.advance chains.(i) ~until:(at +. tau spec));
        lock_phase (i + 1)
    end
  in
  match lock_phase 0 with
  | Some i -> finish (Abort_at_lock i)
  | None ->
    (* Reveal: the leader claims their incoming leg (chain n-1). *)
    let reveal_at = lock_phase_hours spec in
    let leader_price = price_paths (n - 1) reveal_at in
    let leader_decision =
      if not (online 0 reveal_at) then begin
        log reveal_at "leader offline: secret never revealed";
        Agent.Stop
      end
      else decisions 0 ~price:leader_price
    in
    (match leader_decision with
    | Agent.Stop ->
      log reveal_at "leader withholds the secret"
    | Agent.Cont ->
      log reveal_at "leader reveals the secret on the last chain";
      ignore
        (Chain.submit chains.(n - 1) ~at:reveal_at
           (Tx.Htlc_claim
              {
                contract_id = contract_name (n - 1);
                preimage = secret.Secret.preimage;
              }));
      (* Cascade: party j+1 claims chain j once the secret is public. *)
      for j = n - 2 downto 0 do
        let at = claim_submit_time spec j in
        let claimer = (j + 1) mod n in
        if online claimer at then begin
          log at (Printf.sprintf "%s claims asset%d" (party_name claimer) j);
          ignore
            (Chain.submit chains.(j) ~at
               (Tx.Htlc_claim
                  {
                    contract_id = contract_name j;
                    preimage = secret.Secret.preimage;
                  }))
        end
        else
          log at (Printf.sprintf "%s offline: claim missed" (party_name claimer))
      done);
    (* Outcome from the contracts' final states. *)
    Array.iter (fun c -> ignore (Chain.advance c ~until:horizon)) chains;
    let states =
      Array.init n (fun i ->
          match Chain.htlc chains.(i) ~contract_id:(contract_name i) with
          | Some h -> h.Htlc.state
          | None -> Htlc.Refunded { at = 0. })
    in
    let claimed =
      Array.for_all (function Htlc.Claimed _ -> true | _ -> false) states
    in
    let refunded =
      Array.for_all (function Htlc.Refunded _ -> true | _ -> false) states
    in
    if claimed then finish Success
    else if refunded then finish Abort_no_reveal
    else
      finish
        (Anomalous
           (String.concat ", "
              (Array.to_list
                 (Array.mapi
                    (fun i s ->
                      Printf.sprintf "hop%d=%s" i (Htlc.state_to_string s))
                    states))))

type mc_result = {
  trials : int;
  success : int;
  rate : float;
  aborted_at : int array;
}

let mc_success_rate ?(trials = 20_000) ?(seed = 0x40b) spec =
  let n = spec.parties in
  let p = spec.params in
  let gbm = Params.gbm p in
  let rng = Numerics.Rng.create ~seed () in
  let band = Cutoff.p_t2_band p ~p_star:spec.p_star in
  let k3 = Cutoff.p_t3_low p ~p_star:spec.p_star in
  let aborted_at = Array.make (n + 1) 0 in
  let success = ref 0 in
  for _ = 1 to trials do
    (* Followers test their band at their lock time; the leader tests
       the reveal cutoff at the cascade start.  Legs are i.i.d. *)
    let rec followers i =
      if i >= n then true
      else begin
        let t = float_of_int i *. tau spec in
        let price = Stochastic.Gbm.sample rng gbm ~p0:p.Params.p0 ~tau:t in
        if Intervals.contains band price then followers (i + 1)
        else begin
          aborted_at.(i) <- aborted_at.(i) + 1;
          false
        end
      end
    in
    if followers 1 then begin
      let t = lock_phase_hours spec in
      let price = Stochastic.Gbm.sample rng gbm ~p0:p.Params.p0 ~tau:t in
      if price > k3 then incr success
      else aborted_at.(n) <- aborted_at.(n) + 1
    end
  done;
  {
    trials;
    success = !success;
    rate = float_of_int !success /. float_of_int trials;
    aborted_at;
  }
