(** Multi-party cyclic atomic swaps (Herlihy, PODC 2018 [28], discussed
    in Section II-C): [n] parties on [n] chains, party [i] paying party
    [i+1 mod n], all locks hashed to one secret held by the leader
    (party 0), with {e staggered} time locks so every party can still
    claim after learning the secret.

    The implementation runs the full protocol on [n] simulated chains
    and measures what the 2-party analysis predicts qualitatively:
    lock-up time grows linearly in [n], every extra hop adds a
    strategic exit, and the cycle's success rate decays roughly
    geometrically in the number of rational parties. *)

type spec = {
  parties : int;  (** n >= 2. *)
  params : Params.t;
      (** Per-leg market/agent parameters (identical legs; [tau_b] is
          each chain's confirmation time, [eps_b] its mempool delay,
          [p0]/[mu]/[sigma] the per-leg price of the asset received
          against the asset given). *)
  p_star : float;  (** Common per-leg exchange rate. *)
}

val make : ?parties:int -> ?p_star:float -> Params.t -> spec
(** Defaults: 3 parties, [p_star = p0].
    @raise Invalid_argument if [parties < 2]. *)

val lock_phase_hours : spec -> float
(** Time until every lock is confirmed: [n tau]. *)

val total_success_hours : spec -> float
(** Time until the last claim confirms on the happy path. *)

val expiry_schedule : spec -> float array
(** Chain [i]'s time-lock expiry (tight Herlihy staggering: parties
    that learn the secret later get later deadlines on their incoming
    leg). *)

type outcome =
  | Success
  | Abort_at_lock of int  (** Party [i] declined to lock; earlier legs refund. *)
  | Abort_no_reveal  (** All locked but the leader withheld the secret. *)
  | Anomalous of string

type result = {
  outcome : outcome;
  deltas : (float * float) array;
      (** Per party: (outgoing-asset change, incoming-asset change). *)
  trace : (float * string) list;
}

val run :
  ?decisions:(int -> price:float -> Agent.decision) ->
  ?offline:(int * float) list ->
  ?price_paths:(int -> float -> float) ->
  ?seed:int ->
  spec -> result
(** Executes the cycle.  [decisions i ~price] is party [i]'s choice at
    their action point ([i = 0]: reveal at the cascade start; others:
    lock) given their leg's current price; default: everyone continues.
    [offline] lists (party, crash time).  [price_paths i t] gives leg
    [i]'s price (default: constant [p0]). *)

type mc_result = {
  trials : int;
  success : int;
  rate : float;
  aborted_at : int array;  (** Stage histogram: index n = leader's reveal. *)
}

val mc_success_rate :
  ?trials:int -> ?seed:int -> spec -> mc_result
(** Monte-Carlo success rate when {e every} party applies the 2-party
    rational rule to their own leg (band test at the lock point; the
    leader additionally applies the Eq. 18/19 rule at reveal), with
    i.i.d. GBM leg prices. *)
