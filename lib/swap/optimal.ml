type q_choice = { q : float; sr : float }

let sr_of_q ?quad_nodes (p : Params.t) ~p_star ~q =
  let c = Collateral.symmetric p ~q in
  Collateral.success_rate ?quad_nodes c ~p_star

let min_q_for_sr ?quad_nodes ?(tol = 1e-4) ?q_max (p : Params.t) ~p_star
    ~target =
  let q_max = Option.value ~default:(4. *. p.Params.p0) q_max in
  let sr q = sr_of_q ?quad_nodes p ~p_star ~q in
  if sr q_max < target then None
  else if sr 0. >= target then Some { q = 0.; sr = sr 0. }
  else begin
    (* SR is nondecreasing in q: bisect on the first crossing. *)
    let lo = ref 0. and hi = ref q_max in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      if sr mid >= target then hi := mid else lo := mid
    done;
    Some { q = !hi; sr = sr !hi }
  end

let surplus ?quad_nodes (c : Collateral.t) ~p_star =
  Collateral.a_t1_cont ?quad_nodes c ~p_star
  -. Collateral.a_t1_stop c ~p_star
  +. Collateral.b_t1_cont ?quad_nodes c ~p_star
  -. Collateral.b_t1_stop c

let best_q_for_welfare ?quad_nodes ?q_max ?(grid = 25) (p : Params.t) ~p_star =
  let q_max = Option.value ~default:(4. *. p.Params.p0) q_max in
  let eval q =
    let c = Collateral.symmetric p ~q in
    (surplus ?quad_nodes c ~p_star, Collateral.success_rate ?quad_nodes c ~p_star)
  in
  let qs = Numerics.Grid.linspace ~lo:0. ~hi:q_max ~n:(max 3 grid) in
  let best_q = ref 0. and best_surplus = ref neg_infinity and best_sr = ref 0. in
  Array.iter
    (fun q ->
      let s, sr = eval q in
      if s > !best_surplus then begin
        best_surplus := s;
        best_q := q;
        best_sr := sr
      end)
    qs;
  ({ q = !best_q; sr = !best_sr }, !best_surplus)
