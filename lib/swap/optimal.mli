(** Mechanism tuning: optimal exchange rate and collateral sizing.
    (Section IV's conclusion that deposits "can be dynamically adjusted
    depending on the terms of the swap and optimization goal".) *)

type q_choice = { q : float; sr : float }

val sr_of_q :
  ?quad_nodes:int -> Params.t -> p_star:float -> q:float -> float
(** Success rate of the symmetric-collateral game at [q]. *)

val min_q_for_sr :
  ?quad_nodes:int -> ?tol:float -> ?q_max:float -> Params.t ->
  p_star:float -> target:float -> q_choice option
(** Smallest symmetric deposit achieving [SR >= target], by bisection
    (SR is nondecreasing in [q] — Fig. 9); [None] if even [q_max]
    (default [4 * p0]) falls short. *)

val best_q_for_welfare :
  ?quad_nodes:int -> ?q_max:float -> ?grid:int -> Params.t ->
  p_star:float -> q_choice * float
(** The symmetric deposit maximising total surplus
    [(U^A_t1(cont) - U^A_t1(stop)) + (U^B_t1(cont) - U^B_t1(stop))];
    returns the choice and the surplus.  Demonstrates the
    cost-of-locking vs success-probability trade-off. *)

val surplus : ?quad_nodes:int -> Collateral.t -> p_star:float -> float
(** Total [t1] surplus of entering the swap over the outside option. *)
