type regime = { alice_committed : bool; bob_committed : bool }

let rational = { alice_committed = false; bob_committed = false }
let both_committed = { alice_committed = true; bob_committed = true }
let alice_committed = { alice_committed = true; bob_committed = false }
let bob_committed = { alice_committed = false; bob_committed = true }

type valuation = {
  regime : regime;
  alice_t1 : float;
  bob_t1 : float;
  success_rate : float;
}

let full_band = Intervals.of_list [ { Intervals.lo = 0.; hi = infinity } ]

(* The committed agent's cutoff degenerates (Alice: k3 = 0, she always
   reveals; Bob: the whole positive axis, he always deploys); the other
   agent's threshold is re-solved against that behaviour. *)
let solve_regime (p : Params.t) ~p_star regime =
  let k3 = if regime.alice_committed then 0. else Cutoff.p_t3_low p ~p_star in
  let band =
    if regime.bob_committed then full_band
    else begin
      (* Bob best-responds to Alice's (possibly committed) t3 rule. *)
      let g x =
        Utility.b_t2_cont p ~p_star ~k3 ~p_t2:x -. Utility.b_t2_stop ~p_t2:x
      in
      let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
      let roots =
        Numerics.Root.find_all_roots_log ~n:600 g ~a:domain_lo ~b:domain_hi
      in
      Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity
    end
  in
  (k3, band)

let value ?quad_nodes (p : Params.t) ~p_star regime =
  let k3, band = solve_regime p ~p_star regime in
  {
    regime;
    alice_t1 = Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band;
    bob_t1 = Utility.b_t1_cont ?quad_nodes p ~p_star ~k3 ~band;
    success_rate = Success.analytic_given ?quad_nodes p ~k3 ~band;
  }

type option_values = {
  alice_option : float;
  bob_option : float;
  sr_rational : float;
  sr_all_committed : float;
}

let option_values ?quad_nodes (p : Params.t) ~p_star =
  let v_rational = value ?quad_nodes p ~p_star rational in
  let v_alice_committed = value ?quad_nodes p ~p_star alice_committed in
  let v_bob_committed = value ?quad_nodes p ~p_star bob_committed in
  let v_both = value ?quad_nodes p ~p_star both_committed in
  {
    alice_option = v_rational.alice_t1 -. v_alice_committed.alice_t1;
    bob_option = v_rational.bob_t1 -. v_bob_committed.bob_t1;
    sr_rational = v_rational.success_rate;
    sr_all_committed = v_both.success_rate;
  }
