(** Quantifying the embedded optionality — the paper's central claim
    (Sections I, II-C, V) is that {e both} agents, not only the swap
    initiator, hold a free American-style option to abandon the swap
    when the price moves their way.

    This module prices those options by comparing equilibrium utilities
    under different commitment regimes: an agent who "commits" is
    contractually bound to continue at her mid-game decision point
    (Alice at [t3], Bob at [t2]) and the counterparty best-responds to
    that commitment.  The utility difference between the rational and
    the committed regime, evaluated at [t1], is the option value. *)

type regime = {
  alice_committed : bool;  (** Alice must reveal at [t3]. *)
  bob_committed : bool;  (** Bob must deploy at [t2]. *)
}

val rational : regime
val both_committed : regime
val alice_committed : regime
val bob_committed : regime

type valuation = {
  regime : regime;
  alice_t1 : float;  (** Alice's Eq. 25-style value of initiating. *)
  bob_t1 : float;  (** Bob's Eq. 26-style value. *)
  success_rate : float;  (** SR given initiation under the regime. *)
}

val value : ?quad_nodes:int -> Params.t -> p_star:float -> regime -> valuation
(** Equilibrium value at [t1] when the committed agents lose their
    mid-game exit and the uncommitted ones best-respond (their cutoffs
    are re-solved against the committed behaviour). *)

type option_values = {
  alice_option : float;
      (** Alice's equilibrium gain from keeping her [t3] exit:
          [alice_t1(rational) - alice_t1(alice_committed)], with Bob
          best-responding in both regimes.  May be {e negative}: because
          Bob widens his continuation band when Alice is bound, a
          credible commitment can be worth more to Alice than the exit
          itself — the economic rationale for the premium mechanism of
          Han et al. *)
  bob_option : float;
      (** Bob's gain from keeping his [t2] exit, with Alice rational. *)
  sr_rational : float;
  sr_all_committed : float;
      (** 1.0 by construction — both commitments remove every exit. *)
}

val option_values : ?quad_nodes:int -> Params.t -> p_star:float -> option_values
(** Headline numbers: each agent's optionality premium and the success
    rates with and without exits. *)
