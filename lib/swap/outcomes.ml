open Stochastic

type distribution = {
  success : float;
  bob_balks_low : float;
  bob_balks_high : float;
  alice_reneges : float;
}

let distribution ?quad_nodes (p : Params.t) ~p_star =
  let gbm = Params.gbm p in
  let k3 = Cutoff.p_t3_low p ~p_star in
  match Cutoff.p_t2_band_endpoints p ~p_star with
  | None -> { success = 0.; bob_balks_low = 0.; bob_balks_high = 0.;
              alice_reneges = 0. }
  | Some (lo, hi) ->
    let bob_balks_low = Gbm.cdf gbm ~x:lo ~p0:p.Params.p0 ~tau:p.Params.tau_a in
    let bob_balks_high =
      if hi = infinity then 0.
      else Gbm.sf gbm ~x:hi ~p0:p.Params.p0 ~tau:p.Params.tau_a
    in
    let band = Cutoff.p_t2_band p ~p_star in
    let success = Success.analytic_given ?quad_nodes p ~k3 ~band in
    let alice_reneges =
      Utility.integrate_over ?quad_nodes band ~f:(fun x ->
          Gbm.pdf gbm ~x ~p0:p.Params.p0 ~tau:p.Params.tau_a
          *. Gbm.cdf gbm ~x:k3 ~p0:x ~tau:p.Params.tau_b)
    in
    { success; bob_balks_low; bob_balks_high; alice_reneges }

let blame_share_bob d =
  let bob = d.bob_balks_low +. d.bob_balks_high in
  let failures = bob +. d.alice_reneges in
  if failures <= 0. then nan else bob /. failures

type durations = {
  expected_hours : float;
  success_hours : float;
  failure_hours : float;
}

let durations ?quad_nodes (p : Params.t) ~p_star =
  let tl = Timeline.ideal p in
  let success_hours = Timeline.duration_success tl in
  let failure_hours = Timeline.duration_failure tl in
  let d = distribution ?quad_nodes p ~p_star in
  (* A t2 balk still waits for Alice's refund at t8. *)
  let p_fail = d.bob_balks_low +. d.bob_balks_high +. d.alice_reneges in
  {
    expected_hours =
      (d.success *. success_hours) +. (p_fail *. failure_hours);
    success_hours;
    failure_hours;
  }
