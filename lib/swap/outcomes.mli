(** Full outcome distribution of an initiated swap — a finer lens than
    the scalar success rate: {e which agent} walks away, {e in which
    direction} the price moved, with what probability, and how long the
    swap takes in each case.  This quantifies the paper's headline
    claim that "both transacting counterparties can rationally decide
    to walk away ... and at different times" (Section V). *)

type distribution = {
  success : float;  (** Eq. 31. *)
  bob_balks_low : float;
      (** [P_t2] fell below Bob's band: he expects Alice to renege, so
          he never deploys (the paper's intuition 1 at [t2]). *)
  bob_balks_high : float;
      (** [P_t2] rose above the band: Bob keeps the appreciated
          Token_b (intuition 2) — the exit "neglected in the
          literature" that the paper highlights. *)
  alice_reneges : float;
      (** Bob deployed but [P_t3] ended below Eq. 18's cutoff: Alice
          withholds the secret (the Han et al. initiator option). *)
}

val distribution : ?quad_nodes:int -> Params.t -> p_star:float -> distribution
(** Probabilities conditional on initiation; they sum to 1 (tested).
    All-zero with [success = 0.] when Bob's band is empty. *)

val blame_share_bob : distribution -> float
(** Fraction of failures caused by Bob's [t2] exits — the quantitative
    form of "not only the swap initiator may leave".  [nan] when there
    are no failures. *)

type durations = {
  expected_hours : float;
      (** Unconditional expected time from [t0] until every receipt has
          landed. *)
  success_hours : float;
  failure_hours : float;  (** Same for every failure mode (Eq. 10/11). *)
}

val durations : ?quad_nodes:int -> Params.t -> p_star:float -> durations
