type agent = { alpha : float; r : float }

type t = {
  alice : agent;
  bob : agent;
  tau_a : float;
  tau_b : float;
  eps_b : float;
  p0 : float;
  mu : float;
  sigma : float;
}

let defaults =
  {
    alice = { alpha = 0.3; r = 0.01 };
    bob = { alpha = 0.3; r = 0.01 };
    tau_a = 3.;
    tau_b = 4.;
    eps_b = 1.;
    p0 = 2.;
    mu = 0.002;
    sigma = 0.1;
  }

let validate t =
  let check cond msg acc = if cond then acc else Error msg in
  Ok ()
  |> check (t.alice.alpha > -1.) "alpha_alice must exceed -1"
  |> check (t.bob.alpha > -1.) "alpha_bob must exceed -1"
  |> check (t.alice.r > 0.) "r_alice must be positive"
  |> check (t.bob.r > 0.) "r_bob must be positive"
  |> check (t.tau_a > 0.) "tau_a must be positive"
  |> check (t.tau_b > 0.) "tau_b must be positive"
  |> check (t.eps_b >= 0.) "eps_b must be nonnegative"
  |> check (t.eps_b < t.tau_b) "eps_b must be below tau_b (Eq. 3)"
  |> check (t.p0 > 0.) "p0 must be positive"
  |> check (t.sigma > 0.) "sigma must be positive"

let create ?alice ?bob ?tau_a ?tau_b ?eps_b ?p0 ?mu ?sigma () =
  let d = defaults in
  let t =
    {
      alice = Option.value ~default:d.alice alice;
      bob = Option.value ~default:d.bob bob;
      tau_a = Option.value ~default:d.tau_a tau_a;
      tau_b = Option.value ~default:d.tau_b tau_b;
      eps_b = Option.value ~default:d.eps_b eps_b;
      p0 = Option.value ~default:d.p0 p0;
      mu = Option.value ~default:d.mu mu;
      sigma = Option.value ~default:d.sigma sigma;
    }
  in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Params.create: " ^ msg)

let gbm t = Stochastic.Gbm.create ~mu:t.mu ~sigma:t.sigma
let with_alpha_alice t alpha = { t with alice = { t.alice with alpha } }
let with_alpha_bob t alpha = { t with bob = { t.bob with alpha } }
let with_r_alice t r = { t with alice = { t.alice with r } }
let with_r_bob t r = { t with bob = { t.bob with r } }
let with_mu t mu = { t with mu }
let with_sigma t sigma = { t with sigma }
let with_tau_a t tau_a = { t with tau_a }
let with_tau_b t tau_b = { t with tau_b }
let with_p0 t p0 = { t with p0 }

let to_string t =
  Printf.sprintf
    "alphaA=%g alphaB=%g rA=%g rB=%g tau_a=%g tau_b=%g eps_b=%g p0=%g mu=%g \
     sigma=%g"
    t.alice.alpha t.bob.alpha t.alice.r t.bob.r t.tau_a t.tau_b t.eps_b t.p0
    t.mu t.sigma
