(** Model parameters (Section III-A, Table III).

    Alice trades [p_star] Token_a for 1 Token_b; Token_b's price in
    Token_a follows a GBM.  Time is measured in hours, matching the
    paper's calibration. *)

type agent = {
  alpha : float;  (** Success premium (>= -1; honest agents have high alpha). *)
  r : float;  (** Discount rate per hour, > 0 (Assumption: r > 0). *)
}

type t = {
  alice : agent;
  bob : agent;
  tau_a : float;  (** Confirmation time on Chain_a (hours). *)
  tau_b : float;  (** Confirmation time on Chain_b (hours). *)
  eps_b : float;  (** Mempool discoverability delay on Chain_b; < tau_b (Eq. 3). *)
  p0 : float;  (** Token_b price at [t0] (= at [t1], Eq. 13). *)
  mu : float;  (** GBM drift per hour. *)
  sigma : float;  (** GBM volatility per sqrt hour. *)
}

val defaults : t
(** Table III: [alpha = 0.3], [r = 0.01], [tau_a = 3], [tau_b = 4],
    [eps_b = 1], [p0 = 2], [mu = 0.002], [sigma = 0.1]. *)

val validate : t -> (unit, string) result
(** Checks every constraint the model imposes (positivity, Eq. 3,
    [alpha > -1]). *)

val create :
  ?alice:agent -> ?bob:agent -> ?tau_a:float -> ?tau_b:float ->
  ?eps_b:float -> ?p0:float -> ?mu:float -> ?sigma:float -> unit -> t
(** [defaults] overridden field-wise.
    @raise Invalid_argument if the result fails {!validate}. *)

val gbm : t -> Stochastic.Gbm.t
(** The price process. *)

val with_alpha_alice : t -> float -> t
val with_alpha_bob : t -> float -> t
val with_r_alice : t -> float -> t
val with_r_bob : t -> float -> t
val with_mu : t -> float -> t
val with_sigma : t -> float -> t
val with_tau_a : t -> float -> t
val with_tau_b : t -> float -> t
val with_p0 : t -> float -> t

val to_string : t -> string
(** One-line rendering for traces and experiment headers. *)
