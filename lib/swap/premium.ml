type t = Collateral.t

let create params ~w =
  if w < 0. then invalid_arg "Premium.create: negative premium";
  Collateral.create params ~q_alice:w ~q_bob:0.

let as_collateral t = t
let p_t3_low t ~p_star = Collateral.p_t3_low t ~p_star
let success_rate ?quad_nodes t ~p_star =
  Collateral.success_rate ?quad_nodes t ~p_star

let success_curve ?quad_nodes t ~p_stars =
  Collateral.success_curve ?quad_nodes t ~p_stars

let initiation_set ?rule ?scan_points ?quad_nodes t =
  Collateral.initiation_set ?rule ?scan_points ?quad_nodes t
