(** Premium-HTLC baseline in the spirit of Han, Lin & Yu (AFT 2019)
    [29]: only the swap {e initiator} (Alice) posts a deposit [w]; she
    forfeits it to Bob if she walks away after Bob has locked his
    tokens.  This prices the free "American option" the initiator
    otherwise holds.

    Implemented as the one-sided case of {!Collateral}
    ([q_alice = w, q_bob = 0]), so the two mechanisms are directly
    comparable on the same utility model. *)

type t = private Collateral.t

val create : Params.t -> w:float -> t
(** @raise Invalid_argument if [w < 0.]. *)

val as_collateral : t -> Collateral.t

val p_t3_low : t -> p_star:float -> float
(** Alice's [t3] cutoff, lowered by the at-stake premium. *)

val success_rate : ?quad_nodes:int -> t -> p_star:float -> float

val success_curve :
  ?quad_nodes:int -> t -> p_stars:float array -> Success.point array

val initiation_set :
  ?rule:Collateral.rule -> ?scan_points:int -> ?quad_nodes:int -> t ->
  Intervals.t
