type chain_tech = { label : string; tau : float; mempool_delay : float }

let btc_like = { label = "btc-like"; tau = 1.0; mempool_delay = 0.05 }
let eth_like = { label = "eth-like"; tau = 0.21; mempool_delay = 0.005 }
let fast_finality = { label = "fast-bft"; tau = 0.01; mempool_delay = 0.001 }
let paper_default = { label = "paper-pow"; tau = 3.; mempool_delay = 1. }

let pair ?(base = Params.defaults) ~chain_a ~chain_b () =
  (* eps_b must stay below tau_b (Eq. 3). *)
  let eps_b = min chain_b.mempool_delay (0.45 *. chain_b.tau) in
  Params.create ~alice:base.Params.alice ~bob:base.Params.bob
    ~tau_a:chain_a.tau ~tau_b:chain_b.tau ~eps_b ~p0:base.Params.p0
    ~mu:base.Params.mu ~sigma:base.Params.sigma ()

type assessment = {
  chain_a : string;
  chain_b : string;
  feasible : (float * float) option;
  best : Success.point option;
  swap_hours : float;
}

let assess ?base tech_a tech_b =
  let p = pair ?base ~chain_a:tech_a ~chain_b:tech_b () in
  let tl = Timeline.ideal p in
  {
    chain_a = tech_a.label;
    chain_b = tech_b.label;
    feasible = Cutoff.p_star_band_endpoints p;
    best = Success.maximize p;
    swap_hours = Timeline.duration_success tl;
  }

let standard_matrix ?base () =
  let techs = [ paper_default; btc_like; eth_like; fast_finality ] in
  let rec pairs = function
    | [] -> []
    | t :: rest -> List.map (fun u -> (t, u)) (t :: rest) @ pairs rest
  in
  List.map (fun (a, b) -> assess ?base a b) (pairs techs)
