(** Chain-technology presets: the paper calibrates to hour-scale
    proof-of-work confirmation (Section III-D); these presets map the
    same model onto other ledger technologies so the feasibility
    question becomes concrete — {e which chain pairings can support
    HTLC swaps at crypto volatility at all?} *)

type chain_tech = {
  label : string;
  tau : float;  (** Hours to high-probability finality. *)
  mempool_delay : float;  (** Hours to mempool visibility. *)
}

val btc_like : chain_tech
(** 6 confirmations at 10-minute blocks: [tau = 1.0]. *)

val eth_like : chain_tech
(** Post-merge finality in ~13 min: [tau ~ 0.21]. *)

val fast_finality : chain_tech
(** BFT-style chains (seconds): [tau = 0.01]. *)

val paper_default : chain_tech
(** The paper's hour-scale PoW setting ([tau = 3], matching Chain_a). *)

val pair :
  ?base:Params.t -> chain_a:chain_tech -> chain_b:chain_tech -> unit ->
  Params.t
(** Model parameters for a swap across the two technologies (market
    parameters from [base], default Table III). *)

type assessment = {
  chain_a : string;
  chain_b : string;
  feasible : (float * float) option;
  best : Success.point option;
  swap_hours : float;  (** Happy-path duration. *)
}

val assess : ?base:Params.t -> chain_tech -> chain_tech -> assessment

val standard_matrix : ?base:Params.t -> unit -> assessment list
(** All pairings of the four presets (unordered pairs, slow tech listed
    first). *)
