open Chainsim

type outcome =
  | Success
  | Abort_t1
  | Abort_t2
  | Abort_t3
  | Anomalous of string

type bob_deviation =
  | Wrong_hash
  | Short_amount of float
  | Early_expiry of float

type submission = {
  chain : string;
  action : string;
  attempt : int;
  submitted_at : float;
  deadline : float;
  confirmed_at : float option;
}

type telemetry = {
  submissions : submission list;
  retries : int;
  fault_stats_a : Chain.fault_stats;
  fault_stats_b : Chain.fault_stats;
  margin_consumed_a : float;
  margin_consumed_b : float;
}

type result = {
  outcome : outcome;
  timeline : Timeline.t;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  secret_observed_at_t4 : bool;
  trace : (float * string) list;
  receipts_a : Chain.receipt list;
  receipts_b : Chain.receipt list;
  telemetry : telemetry;
  escrow_leftover_a : float;
  escrow_leftover_b : float;
}

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Abort_t3 -> "abort@t3"
  | Anomalous s -> "anomalous: " ^ s

let alice = "alice"
let bob = "bob"
let contract_a = "htlc:a"
let contract_b = "htlc:b"

let m_runs = Obs.Metrics.counter "protocol.runs"
let m_retries = Obs.Metrics.counter "protocol.retries"
let m_out_success = Obs.Metrics.counter "protocol.outcome.success"
let m_out_abort_t1 = Obs.Metrics.counter "protocol.outcome.abort_t1"
let m_out_abort_t2 = Obs.Metrics.counter "protocol.outcome.abort_t2"
let m_out_abort_t3 = Obs.Metrics.counter "protocol.outcome.abort_t3"
let m_out_anomalous = Obs.Metrics.counter "protocol.outcome.anomalous"

let count_outcome = function
  | Success -> Obs.Metrics.incr m_out_success
  | Abort_t1 -> Obs.Metrics.incr m_out_abort_t1
  | Abort_t2 -> Obs.Metrics.incr m_out_abort_t2
  | Abort_t3 -> Obs.Metrics.incr m_out_abort_t3
  | Anomalous _ -> Obs.Metrics.incr m_out_anomalous

(* Funds still parked in contract escrows (or the Oracle vault) once
   the run has settled; nonzero means a refund was never credited. *)
let locked_leftover chain =
  let has_prefix prefix account =
    String.length account >= String.length prefix
    && String.equal (String.sub account 0 (String.length prefix)) prefix
  in
  List.fold_left
    (fun acc (account, bal) ->
      if has_prefix "escrow:" account || has_prefix "oracle:vault:" account
      then acc +. bal
      else acc)
    0. (Chain.accounts chain)

let run ?(q = 0.) ?(policy = Agent.honest) ?price ?(reveal_delay = 0.)
    ?bob_deviation ?alice_offline_from ?alice_online_again_at
    ?bob_offline_from ?bob_online_again_at ?(seed = 0xfeed)
    ?(faults_a = Faults.none) ?(faults_b = Faults.none)
    ?(retry = Agent.no_retry) ?(delay_t2 = 0.) ?(delay_t3 = 0.) (p : Params.t)
    ~p_star =
  Obs.Metrics.incr m_runs;
  Obs.Trace.with_span "protocol.run" @@ fun _run_span ->
  let price = Option.value ~default:(fun _t -> p.Params.p0) price in
  let tl = Timeline.slacked ~delay_t2 ~delay_t3 p in
  (* Steps land in a structured event sink keyed by kind (step / retry /
     crash / recovery); the public [trace] field is rebuilt from it at
     run end, so its contents and order are exactly the old reversed-ref
     log. *)
  let events = Obs.Sink.memory () in
  let logk kind t msg =
    Obs.Sink.emit events ~ts:t ~kind [ ("msg", Obs.Sink.Str msg) ]
  in
  let log t msg = logk "step" t msg in
  (* Chain_a's mempool delay never enters the model; zero keeps Eq. 3.
     Fault seeds derive from the run seed but differ per chain, so the
     two schedules are decorrelated. *)
  let chain_a =
    Chain.create ~faults:faults_a ~fault_seed:(seed lxor 0xa11ce)
      ~name:"chain_a" ~token:"TokenA" ~tau:p.Params.tau_a ~mempool_delay:0. ()
  in
  let chain_b =
    Chain.create ~faults:faults_b ~fault_seed:(seed lxor 0xb0bb)
      ~name:"chain_b" ~token:"TokenB" ~tau:p.Params.tau_b
      ~mempool_delay:p.Params.eps_b ()
  in
  Chain.mint chain_a ~account:alice ~amount:(p_star +. q);
  Chain.mint chain_a ~account:bob ~amount:q;
  Chain.mint chain_b ~account:bob ~amount:1.;
  (* Baselines are taken before any collateral is charged, so that a
     successful swap's deltas equal Table I exactly (the returned
     deposits cancel). *)
  let base_a_alice = Chain.balance chain_a ~account:alice in
  let base_a_bob = Chain.balance chain_a ~account:bob in
  let base_b_alice = Chain.balance chain_b ~account:alice in
  let base_b_bob = Chain.balance chain_b ~account:bob in
  let oracle =
    if q > 0. then begin
      let o = Oracle.create chain_a ~alice ~bob ~q in
      Oracle.deposit o ~at:tl.Timeline.t0;
      log tl.Timeline.t0 (Printf.sprintf "oracle charged %g from each agent" q);
      Some o
    end
    else None
  in
  let oracle_release ~at ~to_ ~amount reason =
    match oracle with
    | None -> ()
    | Some o when amount > 0. ->
      ignore (Oracle.release o ~at ~to_ ~amount);
      log at (Printf.sprintf "oracle releases %g to %s (%s)" amount to_ reason)
    | Some _ -> ()
  in
  let online offline_from online_again_at at =
    match offline_from with
    | None -> true
    | Some t ->
      at < t
      || (match online_again_at with Some r -> at >= r | None -> false)
  in
  let alice_online = online alice_offline_from alice_online_again_at in
  let bob_online = online bob_offline_from bob_online_again_at in
  let secret = Secret.generate (Numerics.Rng.create ~seed ()) in
  (* Fault schedules can defer auto-refunds (halts) or stretch
     confirmations (delay caps, reorgs); widen the settlement horizon
     so every deferred refund still executes before we read balances. *)
  let horizon =
    tl.Timeline.t8 +. p.Params.tau_a +. p.Params.tau_b +. 1.
    +. Faults.horizon_margin faults_a ~tau:p.Params.tau_a
    +. Faults.horizon_margin faults_b ~tau:p.Params.tau_b
  in
  (* Each entry pairs the public record with the chain handle and tx id
     so [finish] can backfill [confirmed_at] from the transaction's
     receipt once the horizon has been reached: a delayed original has
     not confirmed yet when the attempt is recorded. *)
  let submissions = ref [] in
  let retries = ref 0 in
  (* Submit [payload] and watch for the action's effect on contract
     state — not the transaction receipt, because a delayed original
     and a successful resubmission are indistinguishable on-chain (and
     a duplicate of an already-applied HTLC action fails harmlessly).
     While the retry policy allows, the agent is online, and the
     remaining margin still covers one confirmation delay, unconfirmed
     actions are resubmitted with exponential backoff. *)
  let submit_watched chain ~is_online ~action ~at ~deadline ~confirmed payload
      =
    let tau = Chain.tau chain in
    let rec attempt n at =
      let tx_id = Chain.submit chain ~at payload in
      ignore (Chain.advance chain ~until:(at +. tau));
      let confirmed_at = confirmed () in
      submissions :=
        ( chain,
          tx_id,
          {
            chain = Chain.name chain;
            action;
            attempt = n;
            submitted_at = at;
            deadline;
            confirmed_at;
          } )
        :: !submissions;
      match confirmed_at with
      | Some _ -> true
      | None ->
        if n >= retry.Agent.max_attempts then false
        else begin
          let wait =
            retry.Agent.backoff
            *. (retry.Agent.backoff_factor ** float_of_int (n - 1))
          in
          let next = at +. tau +. wait in
          if next +. tau > deadline +. 1e-9 then begin
            log (at +. tau)
              (Printf.sprintf
                 "%s unconfirmed; remaining margin cannot cover another \
                  confirmation, giving up"
                 action);
            false
          end
          else if not (is_online next) then begin
            log (at +. tau)
              (Printf.sprintf
                 "%s unconfirmed; agent offline, no resubmission" action);
            false
          end
          else begin
            incr retries;
            logk "retry" next
              (Printf.sprintf "%s unconfirmed; resubmitting (attempt %d)"
                 action (n + 1));
            attempt (n + 1) next
          end
        end
    in
    attempt 1 at
  in
  let lock_confirmed chain cid () =
    Option.map
      (fun (h : Htlc.t) -> h.Htlc.created_at)
      (Chain.htlc chain ~contract_id:cid)
  in
  let claim_confirmed chain cid () =
    match Chain.htlc chain ~contract_id:cid with
    | Some { Htlc.state = Htlc.Claimed { at; _ }; _ } -> Some at
    | _ -> None
  in
  let finish outcome ~secret_observed_at_t4 =
    count_outcome outcome;
    Obs.Metrics.add m_retries !retries;
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    let trace =
      List.map
        (fun (e : Obs.Sink.event) ->
          let msg =
            match List.assoc_opt "msg" e.fields with
            | Some (Obs.Sink.Str m) -> m
            | _ -> e.kind
          in
          (e.ts, msg))
        (Obs.Sink.events events)
    in
    let subs =
      (* Backfill per-attempt confirmation times from transaction
         receipts: [Ok] means this attempt's transaction applied the
         action (at the receipt time); an [Error] receipt is a
         harmless duplicate of an attempt that had already landed, and
         a missing receipt is a dropped transaction — neither counts
         as this attempt confirming. *)
      List.rev_map
        (fun (ch, tx_id, s) ->
          let confirmed_at =
            match Chain.tx_receipt ch ~tx_id with
            | Some { Chain.result = Ok (); time; _ } -> Some time
            | Some { Chain.result = Error _; _ } | None -> None
          in
          { s with confirmed_at })
        !submissions
    in
    let margin_on name tau =
      List.fold_left
        (fun acc s ->
          if String.equal s.chain name then
            match s.confirmed_at with
            | Some c -> max acc (c -. s.submitted_at -. tau)
            | None -> acc
          else acc)
        0. subs
    in
    {
      outcome;
      timeline = tl;
      alice_delta_a = Chain.balance chain_a ~account:alice -. base_a_alice;
      alice_delta_b = Chain.balance chain_b ~account:alice -. base_b_alice;
      bob_delta_a = Chain.balance chain_a ~account:bob -. base_a_bob;
      bob_delta_b = Chain.balance chain_b ~account:bob -. base_b_bob;
      secret_observed_at_t4;
      trace;
      receipts_a = Chain.receipts chain_a;
      receipts_b = Chain.receipts chain_b;
      telemetry =
        {
          submissions = subs;
          retries = !retries;
          fault_stats_a = Chain.fault_stats chain_a;
          fault_stats_b = Chain.fault_stats chain_b;
          margin_consumed_a = margin_on "chain_a" p.Params.tau_a;
          margin_consumed_b = margin_on "chain_b" p.Params.tau_b;
        };
      escrow_leftover_a = locked_leftover chain_a;
      escrow_leftover_b = locked_leftover chain_b;
    }
  in
  (* Derive the outcome from final contract states once both chains have
     been advanced past every relevant deadline. *)
  let settle ~locked_a ~locked_b ~secret_observed_at_t4 =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    let state_of chain cid =
      Option.map (fun (h : Htlc.t) -> h.Htlc.state) (Chain.htlc chain ~contract_id:cid)
    in
    let outcome =
      match (locked_a, locked_b) with
      | false, _ -> Abort_t1
      | true, false -> Abort_t2
      | true, true -> (
        match (state_of chain_a contract_a, state_of chain_b contract_b) with
        | Some (Htlc.Claimed _), Some (Htlc.Claimed _) -> Success
        | Some (Htlc.Refunded _), Some (Htlc.Refunded _) -> Abort_t3
        | Some (Htlc.Claimed _), Some (Htlc.Refunded _) ->
          Anomalous "Bob claimed Token_a but Alice's claim never landed"
        | Some (Htlc.Refunded _), Some (Htlc.Claimed _) ->
          Anomalous "Alice claimed Token_b but Bob's claim never landed"
        | a, b ->
          Anomalous
            (Printf.sprintf "unsettled contracts (a=%s, b=%s)"
               (match a with
               | Some s -> Htlc.state_to_string s
               | None -> "missing")
               (match b with
               | Some s -> Htlc.state_to_string s
               | None -> "missing")))
    in
    finish outcome ~secret_observed_at_t4
  in
  (* --- t1: Alice decides whether to initiate. ------------------------- *)
  let alice_t1 =
    if alice_online tl.Timeline.t1 then policy.Agent.alice_t1 ~p_star
    else begin
      logk "crash" tl.Timeline.t1 "alice is offline (crash): no initiation";
      Agent.Stop
    end
  in
  match alice_t1 with
  | Agent.Stop ->
    log tl.Timeline.t1 "alice stops at t1: swap not initiated";
    (* Collateral returns to both agents. *)
    oracle_release ~at:tl.Timeline.t1 ~to_:alice ~amount:q "not initiated";
    oracle_release ~at:tl.Timeline.t1 ~to_:bob ~amount:q "not initiated";
    finish Abort_t1 ~secret_observed_at_t4:false
  | Agent.Cont ->
    log tl.Timeline.t1 "alice locks Token_a under the hashlock";
    ignore
      (submit_watched chain_a ~is_online:alice_online ~action:"alice's lock"
         ~at:tl.Timeline.t1 ~deadline:tl.Timeline.t2
         ~confirmed:(lock_confirmed chain_a contract_a)
         (Tx.Htlc_lock
            {
              contract_id = contract_a;
              sender = alice;
              recipient = bob;
              amount = p_star;
              hash = secret.Secret.hash;
              expiry = tl.Timeline.t_lock_a;
            }));
    ignore (Chain.advance chain_a ~until:tl.Timeline.t2);
    (* --- t2: Bob verifies Alice's confirmed contract, then decides. --- *)
    let a_contract_ok =
      match Chain.htlc chain_a ~contract_id:contract_a with
      | Some h -> Htlc.is_locked h
      | None -> false
    in
    let p_t2 = price tl.Timeline.t2 in
    if not a_contract_ok then begin
      log tl.Timeline.t2 "bob aborts: alice's contract not confirmed";
      oracle_release ~at:tl.Timeline.t2 ~to_:alice ~amount:q "setup failure";
      oracle_release ~at:tl.Timeline.t2 ~to_:bob ~amount:q "setup failure";
      settle ~locked_a:true ~locked_b:false ~secret_observed_at_t4:false
    end
    else begin
      let bob_t2 =
        if bob_online tl.Timeline.t2 then policy.Agent.bob_t2 ~p_t2
        else begin
          logk "crash" tl.Timeline.t2
            "bob is offline (crash): no HTLC on chain_b";
          Agent.Stop
        end
      in
      match bob_t2 with
      | Agent.Stop ->
        log tl.Timeline.t2
          (Printf.sprintf "bob stops at t2 (P_t2 = %g): no HTLC on chain_b" p_t2);
        (* Bob forfeits: the Oracle pays both deposits to Alice at t3. *)
        oracle_release ~at:tl.Timeline.t3 ~to_:alice ~amount:(2. *. q)
          "bob withdrew";
        settle ~locked_a:true ~locked_b:false ~secret_observed_at_t4:false
      | Agent.Cont ->
        (* Bob's deployed contract, possibly deviating from the deal. *)
        let deployed_amount, deployed_hash, deployed_expiry =
          match bob_deviation with
          | None -> (1., secret.Secret.hash, tl.Timeline.t_lock_b)
          | Some Wrong_hash ->
            (1., Sha256.digest "not the agreed commitment", tl.Timeline.t_lock_b)
          | Some (Short_amount a) -> (a, secret.Secret.hash, tl.Timeline.t_lock_b)
          | Some (Early_expiry hours) ->
            (1., secret.Secret.hash, tl.Timeline.t_lock_b -. hours)
        in
        log tl.Timeline.t2
          (Printf.sprintf "bob locks Token_b under the same hash (P_t2 = %g)"
             p_t2);
        ignore
          (submit_watched chain_b ~is_online:bob_online ~action:"bob's lock"
             ~at:tl.Timeline.t2 ~deadline:tl.Timeline.t3
             ~confirmed:(lock_confirmed chain_b contract_b)
             (Tx.Htlc_lock
                {
                  contract_id = contract_b;
                  sender = bob;
                  recipient = alice;
                  amount = deployed_amount;
                  hash = deployed_hash;
                  expiry = deployed_expiry;
                }));
        ignore (Chain.advance chain_b ~until:tl.Timeline.t3);
        (* Bob fulfilled his obligations: his deposit returns at t3. *)
        oracle_release ~at:tl.Timeline.t3 ~to_:bob ~amount:q
          "bob's obligations fulfilled";
        (* --- t3: Alice verifies Bob's contract, then decides.  Per
           Section II-B she checks that the contract is confirmed, uses
           the agreed hash, carries the full amount, names her as the
           recipient, and leaves her a safe claim window
           (t3 + tau_b <= expiry, Eq. 8). --------------------------------- *)
        let b_contract_problem =
          match Chain.htlc chain_b ~contract_id:contract_b with
          | None -> Some "not deployed"
          | Some h ->
            if not (Htlc.is_locked h) then Some "not in a locked state"
            else if not (String.equal h.Htlc.hash secret.Secret.hash) then
              Some "wrong hashlock commitment"
            else if h.Htlc.amount < 1. -. 1e-12 then Some "short amount"
            else if not (String.equal h.Htlc.recipient alice) then
              Some "wrong recipient"
            else if h.Htlc.expiry < tl.Timeline.t3 +. p.Params.tau_b then
              Some "expiry leaves no safe claim window"
            else None
        in
        let p_t3 = price tl.Timeline.t3 in
        match b_contract_problem with
        | Some reason ->
          log tl.Timeline.t3
            (Printf.sprintf "alice withholds the secret: bob's contract %s"
               reason);
          oracle_release ~at:tl.Timeline.t3 ~to_:alice ~amount:q
            "bob's contract non-conforming";
          settle ~locked_a:true ~locked_b:true ~secret_observed_at_t4:false
        | None -> begin
          let alice_t3 =
            if alice_online tl.Timeline.t3 then policy.Agent.alice_t3 ~p_t3
            else begin
              logk "crash" tl.Timeline.t3
                "alice is offline (crash): secret never revealed";
              Agent.Stop
            end
          in
          match alice_t3 with
          | Agent.Stop ->
            log tl.Timeline.t3
              (Printf.sprintf "alice stops at t3 (P_t3 = %g): secret withheld"
                 p_t3);
            (* Alice forfeits: her deposit goes to Bob at t4. *)
            oracle_release ~at:tl.Timeline.t4 ~to_:bob ~amount:q
              "alice withheld the secret";
            settle ~locked_a:true ~locked_b:true ~secret_observed_at_t4:false
          | Agent.Cont ->
            let reveal_at = tl.Timeline.t3 +. reveal_delay in
            log reveal_at
              (Printf.sprintf
                 "alice claims Token_b, revealing the preimage (P_t3 = %g)"
                 p_t3);
            ignore
              (submit_watched chain_b ~is_online:alice_online
                 ~action:"alice's claim" ~at:reveal_at
                 ~deadline:tl.Timeline.t_lock_b
                 ~confirmed:(claim_confirmed chain_b contract_b)
                 (Tx.Htlc_claim
                    {
                      contract_id = contract_b;
                      preimage = secret.Secret.preimage;
                    }));
            (* --- t4: Bob watches Chain_b's mempool for the secret.
               Even a dropped (censored) claim is mempool-visible, so
               the preimage leaks regardless of confirmation. ---------- *)
            let observe_at = reveal_at +. p.Params.eps_b in
            let observed =
              Chain.observed_preimage chain_b ~at:observe_at
                ~hash:secret.Secret.hash
            in
            (match observed with
            | Some preimage ->
              log observe_at "bob observes the preimage in chain_b's mempool";
              (* Alice fulfilled everything: her deposit returns at t4. *)
              oracle_release ~at:observe_at ~to_:alice ~amount:q
                "alice's obligations fulfilled";
              let bob_claim ~at =
                ignore
                  (submit_watched chain_a ~is_online:bob_online
                     ~action:"bob's claim" ~at ~deadline:tl.Timeline.t_lock_a
                     ~confirmed:(claim_confirmed chain_a contract_a)
                     (Tx.Htlc_claim { contract_id = contract_a; preimage }))
              in
              if policy.Agent.bob_t4 = Agent.Cont && bob_online observe_at
              then begin
                log observe_at "bob claims Token_a with the observed preimage";
                bob_claim ~at:observe_at
              end
              else if not (bob_online observe_at) then begin
                (* Transient outage: on recovery Bob rescans the mempool
                   and claims late — the time lock decides if it lands. *)
                match bob_online_again_at with
                | Some r when r > observe_at && policy.Agent.bob_t4 = Agent.Cont
                  ->
                  logk "recovery" r
                    "bob back online: claims Token_a with the revealed secret";
                  bob_claim ~at:r
                | _ ->
                  logk "crash" observe_at
                    "bob is offline (crash): the revealed secret goes unclaimed"
              end
              else log observe_at "bob (irrationally) declines to claim"
            | None ->
              log observe_at "bob cannot find the preimage in the mempool");
            settle ~locked_a:true ~locked_b:true
              ~secret_observed_at_t4:(observed <> None)
        end
    end

let run_on_path ?q ?policy ?seed (p : Params.t) ~p_star ~path =
  run ?q ?policy ?seed p ~p_star ~price:(fun t -> Stochastic.Path.at path t)
