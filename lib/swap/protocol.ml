open Chainsim

type outcome =
  | Success
  | Abort_t1
  | Abort_t2
  | Abort_t3
  | Anomalous of string

type bob_deviation =
  | Wrong_hash
  | Short_amount of float
  | Early_expiry of float

type result = {
  outcome : outcome;
  timeline : Timeline.t;
  alice_delta_a : float;
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  secret_observed_at_t4 : bool;
  trace : (float * string) list;
  receipts_a : Chain.receipt list;
  receipts_b : Chain.receipt list;
}

let outcome_to_string = function
  | Success -> "success"
  | Abort_t1 -> "abort@t1"
  | Abort_t2 -> "abort@t2"
  | Abort_t3 -> "abort@t3"
  | Anomalous s -> "anomalous: " ^ s

let alice = "alice"
let bob = "bob"
let contract_a = "htlc:a"
let contract_b = "htlc:b"

let run ?(q = 0.) ?(policy = Agent.honest) ?price ?(reveal_delay = 0.)
    ?bob_deviation ?alice_offline_from ?bob_offline_from ?(seed = 0xfeed)
    (p : Params.t) ~p_star =
  let price = Option.value ~default:(fun _t -> p.Params.p0) price in
  let tl = Timeline.ideal p in
  let trace = ref [] in
  let log t msg = trace := (t, msg) :: !trace in
  (* Chain_a's mempool delay never enters the model; zero keeps Eq. 3. *)
  let chain_a =
    Chain.create ~name:"chain_a" ~token:"TokenA" ~tau:p.Params.tau_a
      ~mempool_delay:0.
  in
  let chain_b =
    Chain.create ~name:"chain_b" ~token:"TokenB" ~tau:p.Params.tau_b
      ~mempool_delay:p.Params.eps_b
  in
  Chain.mint chain_a ~account:alice ~amount:(p_star +. q);
  Chain.mint chain_a ~account:bob ~amount:q;
  Chain.mint chain_b ~account:bob ~amount:1.;
  (* Baselines are taken before any collateral is charged, so that a
     successful swap's deltas equal Table I exactly (the returned
     deposits cancel). *)
  let base_a_alice = Chain.balance chain_a ~account:alice in
  let base_a_bob = Chain.balance chain_a ~account:bob in
  let base_b_alice = Chain.balance chain_b ~account:alice in
  let base_b_bob = Chain.balance chain_b ~account:bob in
  let oracle =
    if q > 0. then begin
      let o = Oracle.create chain_a ~alice ~bob ~q in
      Oracle.deposit o ~at:tl.Timeline.t0;
      log tl.Timeline.t0 (Printf.sprintf "oracle charged %g from each agent" q);
      Some o
    end
    else None
  in
  let oracle_release ~at ~to_ ~amount reason =
    match oracle with
    | None -> ()
    | Some o when amount > 0. ->
      ignore (Oracle.release o ~at ~to_ ~amount);
      log at (Printf.sprintf "oracle releases %g to %s (%s)" amount to_ reason)
    | Some _ -> ()
  in
  let online offline_from at =
    match offline_from with None -> true | Some t -> at < t
  in
  let alice_online = online alice_offline_from in
  let bob_online = online bob_offline_from in
  let secret = Secret.generate (Numerics.Rng.create ~seed ()) in
  let horizon = tl.Timeline.t8 +. p.Params.tau_a +. p.Params.tau_b +. 1. in
  let finish outcome ~secret_observed_at_t4 =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    {
      outcome;
      timeline = tl;
      alice_delta_a = Chain.balance chain_a ~account:alice -. base_a_alice;
      alice_delta_b = Chain.balance chain_b ~account:alice -. base_b_alice;
      bob_delta_a = Chain.balance chain_a ~account:bob -. base_a_bob;
      bob_delta_b = Chain.balance chain_b ~account:bob -. base_b_bob;
      secret_observed_at_t4;
      trace = List.rev !trace;
      receipts_a = Chain.receipts chain_a;
      receipts_b = Chain.receipts chain_b;
    }
  in
  (* Derive the outcome from final contract states once both chains have
     been advanced past every relevant deadline. *)
  let settle ~locked_a ~locked_b ~secret_observed_at_t4 =
    ignore (Chain.advance chain_a ~until:horizon);
    ignore (Chain.advance chain_b ~until:horizon);
    let state_of chain cid =
      Option.map (fun (h : Htlc.t) -> h.Htlc.state) (Chain.htlc chain ~contract_id:cid)
    in
    let outcome =
      match (locked_a, locked_b) with
      | false, _ -> Abort_t1
      | true, false -> Abort_t2
      | true, true -> (
        match (state_of chain_a contract_a, state_of chain_b contract_b) with
        | Some (Htlc.Claimed _), Some (Htlc.Claimed _) -> Success
        | Some (Htlc.Refunded _), Some (Htlc.Refunded _) -> Abort_t3
        | Some (Htlc.Claimed _), Some (Htlc.Refunded _) ->
          Anomalous "Bob claimed Token_a but Alice's claim never landed"
        | Some (Htlc.Refunded _), Some (Htlc.Claimed _) ->
          Anomalous "Alice claimed Token_b but Bob's claim never landed"
        | a, b ->
          Anomalous
            (Printf.sprintf "unsettled contracts (a=%s, b=%s)"
               (match a with
               | Some s -> Htlc.state_to_string s
               | None -> "missing")
               (match b with
               | Some s -> Htlc.state_to_string s
               | None -> "missing")))
    in
    finish outcome ~secret_observed_at_t4
  in
  (* --- t1: Alice decides whether to initiate. ------------------------- *)
  let alice_t1 =
    if alice_online tl.Timeline.t1 then policy.Agent.alice_t1 ~p_star
    else begin
      log tl.Timeline.t1 "alice is offline (crash): no initiation";
      Agent.Stop
    end
  in
  match alice_t1 with
  | Agent.Stop ->
    log tl.Timeline.t1 "alice stops at t1: swap not initiated";
    (* Collateral returns to both agents. *)
    oracle_release ~at:tl.Timeline.t1 ~to_:alice ~amount:q "not initiated";
    oracle_release ~at:tl.Timeline.t1 ~to_:bob ~amount:q "not initiated";
    finish Abort_t1 ~secret_observed_at_t4:false
  | Agent.Cont ->
    log tl.Timeline.t1 "alice locks Token_a under the hashlock";
    ignore
      (Chain.submit chain_a ~at:tl.Timeline.t1
         (Tx.Htlc_lock
            {
              contract_id = contract_a;
              sender = alice;
              recipient = bob;
              amount = p_star;
              hash = secret.Secret.hash;
              expiry = tl.Timeline.t_lock_a;
            }));
    ignore (Chain.advance chain_a ~until:tl.Timeline.t2);
    (* --- t2: Bob verifies Alice's confirmed contract, then decides. --- *)
    let a_contract_ok =
      match Chain.htlc chain_a ~contract_id:contract_a with
      | Some h -> Htlc.is_locked h
      | None -> false
    in
    let p_t2 = price tl.Timeline.t2 in
    if not a_contract_ok then begin
      log tl.Timeline.t2 "bob aborts: alice's contract not confirmed";
      oracle_release ~at:tl.Timeline.t2 ~to_:alice ~amount:q "setup failure";
      oracle_release ~at:tl.Timeline.t2 ~to_:bob ~amount:q "setup failure";
      settle ~locked_a:true ~locked_b:false ~secret_observed_at_t4:false
    end
    else begin
      let bob_t2 =
        if bob_online tl.Timeline.t2 then policy.Agent.bob_t2 ~p_t2
        else begin
          log tl.Timeline.t2 "bob is offline (crash): no HTLC on chain_b";
          Agent.Stop
        end
      in
      match bob_t2 with
      | Agent.Stop ->
        log tl.Timeline.t2
          (Printf.sprintf "bob stops at t2 (P_t2 = %g): no HTLC on chain_b" p_t2);
        (* Bob forfeits: the Oracle pays both deposits to Alice at t3. *)
        oracle_release ~at:tl.Timeline.t3 ~to_:alice ~amount:(2. *. q)
          "bob withdrew";
        settle ~locked_a:true ~locked_b:false ~secret_observed_at_t4:false
      | Agent.Cont ->
        (* Bob's deployed contract, possibly deviating from the deal. *)
        let deployed_amount, deployed_hash, deployed_expiry =
          match bob_deviation with
          | None -> (1., secret.Secret.hash, tl.Timeline.t_lock_b)
          | Some Wrong_hash ->
            (1., Sha256.digest "not the agreed commitment", tl.Timeline.t_lock_b)
          | Some (Short_amount a) -> (a, secret.Secret.hash, tl.Timeline.t_lock_b)
          | Some (Early_expiry hours) ->
            (1., secret.Secret.hash, tl.Timeline.t_lock_b -. hours)
        in
        log tl.Timeline.t2
          (Printf.sprintf "bob locks Token_b under the same hash (P_t2 = %g)"
             p_t2);
        ignore
          (Chain.submit chain_b ~at:tl.Timeline.t2
             (Tx.Htlc_lock
                {
                  contract_id = contract_b;
                  sender = bob;
                  recipient = alice;
                  amount = deployed_amount;
                  hash = deployed_hash;
                  expiry = deployed_expiry;
                }));
        ignore (Chain.advance chain_b ~until:tl.Timeline.t3);
        (* Bob fulfilled his obligations: his deposit returns at t3. *)
        oracle_release ~at:tl.Timeline.t3 ~to_:bob ~amount:q
          "bob's obligations fulfilled";
        (* --- t3: Alice verifies Bob's contract, then decides.  Per
           Section II-B she checks that the contract is confirmed, uses
           the agreed hash, carries the full amount, names her as the
           recipient, and leaves her a safe claim window
           (t3 + tau_b <= expiry, Eq. 8). --------------------------------- *)
        let b_contract_problem =
          match Chain.htlc chain_b ~contract_id:contract_b with
          | None -> Some "not deployed"
          | Some h ->
            if not (Htlc.is_locked h) then Some "not in a locked state"
            else if not (String.equal h.Htlc.hash secret.Secret.hash) then
              Some "wrong hashlock commitment"
            else if h.Htlc.amount < 1. -. 1e-12 then Some "short amount"
            else if not (String.equal h.Htlc.recipient alice) then
              Some "wrong recipient"
            else if h.Htlc.expiry < tl.Timeline.t3 +. p.Params.tau_b then
              Some "expiry leaves no safe claim window"
            else None
        in
        let p_t3 = price tl.Timeline.t3 in
        match b_contract_problem with
        | Some reason ->
          log tl.Timeline.t3
            (Printf.sprintf "alice withholds the secret: bob's contract %s"
               reason);
          oracle_release ~at:tl.Timeline.t3 ~to_:alice ~amount:q
            "bob's contract non-conforming";
          settle ~locked_a:true ~locked_b:true ~secret_observed_at_t4:false
        | None -> begin
          let alice_t3 =
            if alice_online tl.Timeline.t3 then policy.Agent.alice_t3 ~p_t3
            else begin
              log tl.Timeline.t3 "alice is offline (crash): secret never revealed";
              Agent.Stop
            end
          in
          match alice_t3 with
          | Agent.Stop ->
            log tl.Timeline.t3
              (Printf.sprintf "alice stops at t3 (P_t3 = %g): secret withheld"
                 p_t3);
            (* Alice forfeits: her deposit goes to Bob at t4. *)
            oracle_release ~at:tl.Timeline.t4 ~to_:bob ~amount:q
              "alice withheld the secret";
            settle ~locked_a:true ~locked_b:true ~secret_observed_at_t4:false
          | Agent.Cont ->
            let reveal_at = tl.Timeline.t3 +. reveal_delay in
            log reveal_at
              (Printf.sprintf
                 "alice claims Token_b, revealing the preimage (P_t3 = %g)"
                 p_t3);
            ignore
              (Chain.submit chain_b ~at:reveal_at
                 (Tx.Htlc_claim
                    {
                      contract_id = contract_b;
                      preimage = secret.Secret.preimage;
                    }));
            (* --- t4: Bob watches Chain_b's mempool for the secret. ---- *)
            let observe_at = reveal_at +. p.Params.eps_b in
            let observed =
              Chain.observed_preimage chain_b ~at:observe_at
                ~hash:secret.Secret.hash
            in
            (match observed with
            | Some preimage ->
              log observe_at "bob observes the preimage in chain_b's mempool";
              (* Alice fulfilled everything: her deposit returns at t4. *)
              oracle_release ~at:observe_at ~to_:alice ~amount:q
                "alice's obligations fulfilled";
              if policy.Agent.bob_t4 = Agent.Cont && bob_online observe_at
              then begin
                log observe_at "bob claims Token_a with the observed preimage";
                ignore
                  (Chain.submit chain_a ~at:observe_at
                     (Tx.Htlc_claim { contract_id = contract_a; preimage }))
              end
              else if not (bob_online observe_at) then
                log observe_at
                  "bob is offline (crash): the revealed secret goes unclaimed"
              else log observe_at "bob (irrationally) declines to claim"
            | None ->
              log observe_at "bob cannot find the preimage in the mempool");
            settle ~locked_a:true ~locked_b:true
              ~secret_observed_at_t4:(observed <> None)
        end
    end

let run_on_path ?q ?policy ?seed (p : Params.t) ~p_star ~path =
  run ?q ?policy ?seed p ~p_star ~price:(fun t -> Stochastic.Path.at path t)
