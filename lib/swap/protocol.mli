(** End-to-end execution of the HTLC atomic swap (Section II-B) on the
    {!Chainsim} two-chain simulator, with decisions delegated to an
    {!Agent.t} policy at each step of the idealised timeline (Eq. 13).

    The final outcome is {e derived from the chains' contract states},
    not assumed — late reveals, failed claims and refunds all surface
    here exactly as they would on a real pair of ledgers.

    The runner is resilient: each chain can carry a {!Chainsim.Faults}
    schedule (drops, stochastic delays, halts, reorgs), agents can
    resubmit unconfirmed actions under an {!Agent.retry} policy, the
    timeline can carry slack ({!Timeline.slacked}) so retries have
    margin to land in, and every run reports per-submission telemetry.
    With the defaults (no faults, no retries, zero slack) the run is
    identical to the paper's idealised protocol. *)

type outcome =
  | Success  (** Both HTLCs claimed; balances moved per Table I. *)
  | Abort_t1  (** Alice never initiated. *)
  | Abort_t2  (** Bob never deployed his HTLC. *)
  | Abort_t3  (** Alice never revealed; both sides refunded. *)
  | Anomalous of string
      (** Atomicity violation (e.g. Alice revealed too late: her claim
          expired but Bob could still claim hers, or vice versa). *)

type bob_deviation =
  | Wrong_hash  (** Bob locks under a different commitment. *)
  | Short_amount of float  (** Bob locks less than 1 Token_b. *)
  | Early_expiry of float
      (** Bob's lock expires the given hours before [t_b], leaving
          Alice no safe claim window. *)

type submission = {
  chain : string;  (** ["chain_a"] or ["chain_b"]. *)
  action : string;  (** e.g. ["alice's lock"], ["bob's claim"]. *)
  attempt : int;  (** 1-based attempt number for this action. *)
  submitted_at : float;
  deadline : float;  (** Latest useful confirmation time (a timelock). *)
  confirmed_at : float option;
      (** Confirmation time of the action's effect as known right after
          this attempt's expected confirmation; [None] if it had not
          landed by then. *)
}

type telemetry = {
  submissions : submission list;  (** Chronological. *)
  retries : int;  (** Resubmissions beyond each action's first attempt. *)
  fault_stats_a : Chainsim.Chain.fault_stats;
  fault_stats_b : Chainsim.Chain.fault_stats;
  margin_consumed_a : float;
      (** Worst observed confirmation latency beyond [tau_a] on
          chain_a, over confirmed submissions — how much of the
          schedule's slack the faults actually ate. *)
  margin_consumed_b : float;
}

type result = {
  outcome : outcome;
  timeline : Timeline.t;
  alice_delta_a : float;  (** Alice's Token_a balance change. *)
  alice_delta_b : float;
  bob_delta_a : float;
  bob_delta_b : float;
  secret_observed_at_t4 : bool;
      (** Whether Bob could read the preimage from Chain_b's mempool at
          [t4 = t3 + eps_b] (Eq. 7). *)
  trace : (float * string) list;  (** Chronological event log. *)
  receipts_a : Chainsim.Chain.receipt list;
  receipts_b : Chainsim.Chain.receipt list;
  telemetry : telemetry;
  escrow_leftover_a : float;
      (** Funds still stuck in escrow/vault accounts on chain_a at the
          settlement horizon; 0 iff every refund was credited. *)
  escrow_leftover_b : float;
}

val run :
  ?q:float ->
  ?policy:Agent.t ->
  ?price:(float -> float) ->
  ?reveal_delay:float ->
  ?bob_deviation:bob_deviation ->
  ?alice_offline_from:float ->
  ?alice_online_again_at:float ->
  ?bob_offline_from:float ->
  ?bob_online_again_at:float ->
  ?seed:int ->
  ?faults_a:Chainsim.Faults.t ->
  ?faults_b:Chainsim.Faults.t ->
  ?retry:Agent.retry ->
  ?delay_t2:float ->
  ?delay_t3:float ->
  Params.t ->
  p_star:float ->
  result
(** Runs one swap.

    - [q]: symmetric collateral (Section IV; default 0 — no Oracle).
    - [policy]: decision rules (default {!Agent.honest}).
    - [price]: Token_b price as a function of absolute time (default
      constant [p0]); decisions at [t2]/[t3] read it.
    - [reveal_delay]: extra waiting before Alice submits her claim at
      [t3] — nonzero values violate Eq. 8 and demonstrate the timing
      attack surface (the swap degrades to an atomic failure).
    - [bob_deviation]: Bob deploys a non-conforming HTLC at [t2];
      Alice's [t3] verification ("Alice can verify the contract
      deployed on Chain_b", Section II-B) must catch it and withhold
      the secret.
    - [alice_offline_from] / [bob_offline_from]: crash-failure
      injection (Zakhary et al. [31], discussed in Section II-C): the
      agent takes no further actions from that absolute time on.  Most
      crash points degrade to atomic failure via the time locks, but
      Bob crashing after Alice reveals and before his [t4] claim loses
      his Token_a to the expiry refund while Alice keeps Token_b — the
      known HTLC atomicity violation, surfaced as [Anomalous].
    - [alice_online_again_at] / [bob_online_again_at]: end of the
      outage, making it transient rather than a permanent crash.
      Decisions missed while offline are not revisited, but a
      recovered Bob rescans the mempool and submits his [t4] claim
      late (the time lock decides whether it still lands), and
      resubmissions resume.
    - [seed]: secret generation and (xored per chain) fault fates.
    - [faults_a] / [faults_b]: per-chain fault schedules (default
      {!Chainsim.Faults.none} — Assumption 1 exactly).
    - [retry]: resubmission policy for unconfirmed actions (default
      {!Agent.no_retry}).  Retries are deadline-aware: an action is
      only resubmitted while the next attempt can still confirm within
      its timelock.
    - [delay_t2] / [delay_t3]: timeline slack ({!Timeline.slacked},
      default 0): margin on every chain_a / chain_b leg that absorbs
      fault-injected latency. *)

val run_on_path :
  ?q:float -> ?policy:Agent.t -> ?seed:int -> Params.t -> p_star:float ->
  path:Stochastic.Path.t -> result
(** Like {!run} with prices read from a sampled path
    (previous-tick interpolation). *)

val outcome_to_string : outcome -> string
