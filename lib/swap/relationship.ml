open Numerics
open Stochastic

type stance = Faithful | Opportunist

type ended = Horizon | Defection of { by : string; round : int }

type result = {
  rounds_completed : int;
  alice_total : float;
  bob_total : float;
  ended : ended;
}

let stance_to_string = function
  | Faithful -> "faithful"
  | Opportunist -> "opportunist"

(* An opportunist still values completion a little (fees saved, venue
   ratings) but far less than a relationship-minded trader. *)
let alpha_of (p : Params.t) = function
  | Faithful -> p.Params.alice.alpha
  | Opportunist -> 0.1

(* Reference thresholds at spot = p0; by degree-one homogeneity the
   whole decision geometry scales linearly with the spot, so membership
   tests normalise prices back to the reference spot. *)
type thresholds = {
  rate_ratio : float;  (** Quoted [p_star / spot]. *)
  k3_ref : float;  (** Alice's reveal cutoff at the reference spot. *)
  set_ref : Intervals.t;  (** Bob's continuation region, reference spot. *)
}

let solve_thresholds (p : Params.t) ~alice ~bob ~q =
  let faithful_quote =
    match Success.maximize p with
    | Some best -> best.Success.p_star /. p.Params.p0
    | None -> 1.
  in
  let stanced =
    Params.with_alpha_alice
      (Params.with_alpha_bob p (alpha_of p bob))
      (alpha_of p alice)
  in
  let p_star = faithful_quote *. p.Params.p0 in
  let k3_ref, set_ref =
    if q > 0. then begin
      let c = Collateral.symmetric stanced ~q in
      (Collateral.p_t3_low c ~p_star, Collateral.cont_set_t2 c ~p_star)
    end
    else (Cutoff.p_t3_low stanced ~p_star, Cutoff.p_t2_band stanced ~p_star)
  in
  { rate_ratio = faithful_quote; k3_ref; set_ref }

let run_with_thresholds ~seed ~rounds ~gap_hours (p : Params.t) ~alice ~bob th =
  let gbm = Params.gbm p in
  let tl = Timeline.ideal p in
  let rng = Rng.create ~seed () in
  let spot = ref p.Params.p0 in
  let alice_total = ref 0. and bob_total = ref 0. in
  let da h = exp (-.p.Params.alice.r *. h) in
  let db h = exp (-.p.Params.bob.r *. h) in
  let alpha_a = alpha_of p alice and alpha_b = alpha_of p bob in
  let outcome = ref Horizon in
  let completed = ref 0 in
  (* Normalise a live price back to the reference spot's scale. *)
  let normalised price = price *. p.Params.p0 /. !spot in
  (try
     for round = 0 to rounds - 1 do
       let t0 = float_of_int round *. gap_hours in
       let p_star = th.rate_ratio *. !spot in
       let p_t2 = Gbm.sample rng gbm ~p0:!spot ~tau:p.Params.tau_a in
       if not (Intervals.contains th.set_ref (normalised p_t2)) then begin
         (* Bob walks: Alice refunded at t8; Token_b kept by Bob. *)
         alice_total := !alice_total +. (p_star *. da (tl.Timeline.t8 +. t0));
         bob_total := !bob_total +. (p_t2 *. db (tl.Timeline.t2 +. t0));
         outcome := Defection { by = "bob"; round };
         raise Exit
       end;
       let p_t3 = Gbm.sample rng gbm ~p0:p_t2 ~tau:p.Params.tau_b in
       if normalised p_t3 <= th.k3_ref then begin
         let p_t7 = Gbm.sample rng gbm ~p0:p_t3 ~tau:(2. *. p.Params.tau_b) in
         alice_total := !alice_total +. (p_star *. da (tl.Timeline.t8 +. t0));
         bob_total := !bob_total +. (p_t7 *. db (tl.Timeline.t7 +. t0));
         outcome := Defection { by = "alice"; round };
         raise Exit
       end;
       (* Success: the pair keeps trading. *)
       let p_t5 = Gbm.sample rng gbm ~p0:p_t3 ~tau:p.Params.tau_b in
       alice_total :=
         !alice_total +. ((1. +. alpha_a) *. p_t5 *. da (tl.Timeline.t5 +. t0));
       bob_total :=
         !bob_total +. ((1. +. alpha_b) *. p_star *. db (tl.Timeline.t6 +. t0));
       incr completed;
       (* Spot at the next round start. *)
       let remaining = gap_hours -. p.Params.tau_a -. p.Params.tau_b in
       spot :=
         if remaining > 0. then Gbm.sample rng gbm ~p0:p_t3 ~tau:remaining
         else p_t3
     done
   with Exit -> ());
  {
    rounds_completed = !completed;
    alice_total = !alice_total;
    bob_total = !bob_total;
    ended = !outcome;
  }

let check_gap (p : Params.t) gap_hours =
  if gap_hours < p.Params.tau_a +. p.Params.tau_b then
    invalid_arg "Relationship.run: gap shorter than a swap's action phase"

let run ?(seed = 0xbeef) ?(rounds = 100) ?(gap_hours = 24.) ?(q = 0.)
    (p : Params.t) ~alice ~bob =
  check_gap p gap_hours;
  let th = solve_thresholds p ~alice ~bob ~q in
  run_with_thresholds ~seed ~rounds ~gap_hours p ~alice ~bob th

let mean_totals ?(relationships = 200) ?(seed = 0xbeef) ?(rounds = 100)
    ?(gap_hours = 24.) ?(q = 0.) p ~alice ~bob =
  check_gap p gap_hours;
  (* The thresholds are deterministic: solve once, reuse per trial. *)
  let th = solve_thresholds p ~alice ~bob ~q in
  let rng = Rng.create ~seed () in
  let sum_a = ref 0. and sum_b = ref 0. and sum_r = ref 0 in
  for _ = 1 to relationships do
    let seed = Int64.to_int (Int64.logand (Rng.bits64 rng) 0xFFFFFFL) in
    let r = run_with_thresholds ~seed ~rounds ~gap_hours p ~alice ~bob th in
    sum_a := !sum_a +. r.alice_total;
    sum_b := !sum_b +. r.bob_total;
    sum_r := !sum_r + r.rounds_completed
  done;
  let n = float_of_int relationships in
  (!sum_a /. n, !sum_b /. n, float_of_int !sum_r /. n)
