(** Operational counterpart of {!Repeated}: a pair of agents trading
    repeatedly along one simulated price path under a grim-trigger
    norm — any strategic exit ends the relationship.  Each agent's
    stance fixes the thresholds they play:

    - [Faithful]: the Table III premium (reputation priced in);
    - [Opportunist]: a much smaller premium (0.1) — mostly pure asset
      values, defecting on moderate spot moves.

    The simulation shows the repeated-game logic in realised wealth:
    opportunists capture a slightly better exit now and then, but the
    stream they forfeit dominates. *)

type stance = Faithful | Opportunist

type ended = Horizon | Defection of { by : string; round : int }

type result = {
  rounds_completed : int;  (** Successful swaps before the end. *)
  alice_total : float;  (** Sum of realised per-swap utilities, discounted
                            to the relationship start. *)
  bob_total : float;
  ended : ended;
}

val run :
  ?seed:int -> ?rounds:int -> ?gap_hours:float -> ?q:float -> Params.t ->
  alice:stance -> bob:stance -> result
(** Simulates up to [rounds] (default 100) swaps spaced [gap_hours]
    (default 24) apart; each round trades at the SR-optimal rate for
    the current spot (computed once by homogeneity).  [q > 0] plays the
    collateralised (Section IV) game each round — deposits keep even
    opportunists in line, so relationships survive far longer. *)

val mean_totals :
  ?relationships:int -> ?seed:int -> ?rounds:int -> ?gap_hours:float ->
  ?q:float -> Params.t -> alice:stance -> bob:stance ->
  float * float * float
(** Averages over many relationships: (alice mean total, bob mean
    total, mean rounds completed). *)

val stance_to_string : stance -> string
