type t = { trades_per_week : float; horizon_weeks : float }

let surplus_per_trade ?quad_nodes (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  let band = Cutoff.p_t2_band p ~p_star in
  Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band
  -. Utility.a_t1_stop ~p_star
  +. Utility.b_t1_cont ?quad_nodes p ~p_star ~k3 ~band
  -. Utility.b_t1_stop p

let continuation_value ?quad_nodes (p : Params.t) ~p_star rel =
  if rel.trades_per_week <= 0. || rel.horizon_weeks <= 0. then 0.
  else begin
    let per_trade =
      max 0. (surplus_per_trade ?quad_nodes p ~p_star) /. 2.
    in
    let n = int_of_float (rel.trades_per_week *. rel.horizon_weeks) in
    let gap_hours = 168. /. rel.trades_per_week in
    let r = 0.5 *. (p.Params.alice.r +. p.Params.bob.r) in
    let pv = ref 0. in
    for k = 1 to n do
      pv := !pv +. (per_trade *. exp (-.r *. gap_hours *. float_of_int k))
    done;
    !pv
  end

type fixed_point = {
  alpha_endogenous : float;
  sr_endogenous : float;
  sr_one_shot : float;
  iterations : int;
}

let with_alpha (p : Params.t) alpha =
  Params.with_alpha_alice (Params.with_alpha_bob p alpha) alpha

let solve ?quad_nodes ?(max_iter = 40) (p : Params.t) ~p_star rel =
  (* alpha* such that the forfeited continuation value equals the
     premium earned on the trade's notional (~ one Token_b). *)
  let alpha_cap = 2. in
  let next alpha =
    let p' = with_alpha p alpha in
    let pv = continuation_value ?quad_nodes p' ~p_star rel in
    min alpha_cap (pv /. p.Params.p0)
  in
  let rec iterate alpha i =
    if i >= max_iter then (alpha, i)
    else begin
      let proposed = next alpha in
      let damped = (0.5 *. alpha) +. (0.5 *. proposed) in
      if abs_float (damped -. alpha) < 1e-6 then (damped, i + 1)
      else iterate damped (i + 1)
    end
  in
  let alpha_endogenous, iterations = iterate p.Params.alice.alpha 0 in
  let sr_at alpha = Success.analytic ?quad_nodes (with_alpha p alpha) ~p_star in
  {
    alpha_endogenous;
    sr_endogenous = sr_at alpha_endogenous;
    sr_one_shot = sr_at 1e-9;
    iterations;
  }
