(** Endogenous success premium from repeated interaction.

    The paper motivates [alpha] as capturing, among other things, "the
    utility of guarding his/her reputation" (Section III-F1).  This
    module closes the loop: in a repeated relationship where a defector
    is excluded from future trades (grim trigger), the discounted value
    of the future trading surplus acts exactly like a success premium
    on the current swap.  Solving the fixed point
    [alpha* = continuation value / trade size] yields an {e endogenous}
    premium and a relationship-supported success rate — grounding the
    paper's reduced-form [alpha] in repeated-game fundamentals. *)

type t = {
  trades_per_week : float;  (** Relationship intensity. *)
  horizon_weeks : float;  (** Expected remaining relationship length. *)
}

val surplus_per_trade : ?quad_nodes:int -> Params.t -> p_star:float -> float
(** One trade's joint surplus over the outside option at the
    {e exogenous} premium in [Params] (what each future trade is
    worth, split evenly for the symmetric default). *)

val continuation_value :
  ?quad_nodes:int -> Params.t -> p_star:float -> t -> float
(** Discounted value (at the agents' [r], hourly) of the future trade
    stream a defector forfeits. *)

type fixed_point = {
  alpha_endogenous : float;
      (** The premium the relationship itself supports, replacing the
          exogenous [alpha] of Table III. *)
  sr_endogenous : float;  (** Success rate at that premium. *)
  sr_one_shot : float;
      (** Success rate with [alpha = 0] — anonymous counterparties and
          no reputation at stake. *)
  iterations : int;
}

val solve : ?quad_nodes:int -> ?max_iter:int -> Params.t -> p_star:float -> t -> fixed_point
(** Iterates [alpha -> continuation value(alpha) / trade value] to a
    fixed point (damped; converges in a handful of steps). *)
