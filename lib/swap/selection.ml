type mechanism = Plain | Premium of float | Collateral of float

let mechanism_to_string = function
  | Plain -> "plain HTLC"
  | Premium w -> Printf.sprintf "premium (w=%g)" w
  | Collateral q -> Printf.sprintf "collateral (Q=%g)" q

type assessment = {
  mechanism : mechanism;
  alice_net : float;
  bob_net : float;
  success_rate : float;
  adoptable : bool;
}

let assess ?quad_nodes (p : Params.t) ~p_star mechanism =
  let alice_net, bob_net, success_rate =
    match mechanism with
    | Plain ->
      let k3 = Cutoff.p_t3_low p ~p_star in
      let band = Cutoff.p_t2_band p ~p_star in
      ( Utility.a_t1_cont ?quad_nodes p ~p_star ~k3 ~band
        -. Utility.a_t1_stop ~p_star,
        Utility.b_t1_cont ?quad_nodes p ~p_star ~k3 ~band
        -. Utility.b_t1_stop p,
        Success.analytic_given ?quad_nodes p ~k3 ~band )
    | Premium w ->
      let c = Collateral.create p ~q_alice:w ~q_bob:0. in
      ( Collateral.a_t1_cont ?quad_nodes c ~p_star
        -. Collateral.a_t1_stop c ~p_star,
        Collateral.b_t1_cont ?quad_nodes c ~p_star -. Collateral.b_t1_stop c,
        Collateral.success_rate ?quad_nodes c ~p_star )
    | Collateral q ->
      let c = Collateral.symmetric p ~q in
      ( Collateral.a_t1_cont ?quad_nodes c ~p_star
        -. Collateral.a_t1_stop c ~p_star,
        Collateral.b_t1_cont ?quad_nodes c ~p_star -. Collateral.b_t1_stop c,
        Collateral.success_rate ?quad_nodes c ~p_star )
  in
  {
    mechanism;
    alice_net;
    bob_net;
    success_rate;
    adoptable = alice_net >= 0. && bob_net >= 0.;
  }

let menu ?quad_nodes p ~p_star mechanisms =
  List.map (assess ?quad_nodes p ~p_star) mechanisms

type choice = {
  alice_best : mechanism option;
  bob_best : mechanism option;
  joint : mechanism option;
}

let argmax_by f assessments =
  List.fold_left
    (fun best a ->
      match best with
      | Some b when f b >= f a -> best
      | _ -> if a.adoptable then Some a else best)
    None assessments
  |> Option.map (fun a -> a.mechanism)

let choose ?quad_nodes p ~p_star mechanisms =
  let assessments = menu ?quad_nodes p ~p_star mechanisms in
  let adoptable = List.filter (fun a -> a.adoptable) assessments in
  {
    alice_best = argmax_by (fun a -> a.alice_net) adoptable;
    bob_best = argmax_by (fun a -> a.bob_net) adoptable;
    joint = argmax_by (fun a -> a.alice_net +. a.bob_net) adoptable;
  }
