(** Protocol selection (Section V: "which protocol agents would select
    and why if they were given a choice") — compares the mechanisms
    implemented in this repository on a common footing.

    For each mechanism the module reports both agents' [t1] values of
    entering, their outside options, and the success rate, all at a
    given exchange rate; a mechanism is {e adoptable} when both agents
    weakly gain over not trading, and {e preferred} by an agent when it
    maximises that agent's net gain over the menu. *)

type mechanism =
  | Plain  (** The baseline HTLC of Section III. *)
  | Premium of float  (** Han et al.-style, Alice posts [w]. *)
  | Collateral of float  (** Section IV, symmetric deposit [q]. *)

val mechanism_to_string : mechanism -> string

type assessment = {
  mechanism : mechanism;
  alice_net : float;  (** Alice's [t1] value of entering minus stopping. *)
  bob_net : float;
  success_rate : float;
  adoptable : bool;  (** Both nets nonnegative. *)
}

val assess : ?quad_nodes:int -> Params.t -> p_star:float -> mechanism -> assessment

val menu :
  ?quad_nodes:int -> Params.t -> p_star:float -> mechanism list ->
  assessment list

type choice = {
  alice_best : mechanism option;  (** Her favourite among adoptable ones. *)
  bob_best : mechanism option;
  joint : mechanism option;
      (** The adoptable mechanism maximising total net surplus — the
          natural bargaining prediction. *)
}

val choose : ?quad_nodes:int -> Params.t -> p_star:float -> mechanism list -> choice
