type variant = { label : string; params : Params.t }

type sweep_result = {
  variant : variant;
  feasible : (float * float) option;
  curve : Success.point array;
  best : Success.point option;
}

let fig6_panels ?(base = Params.defaults) () =
  let v label params = { label; params } in
  let default = v "default" base in
  [
    ( "alpha_A",
      [
        v "alpha_A=0.05" (Params.with_alpha_alice base 0.05);
        v "alpha_A=0.1" (Params.with_alpha_alice base 0.1);
        default;
        v "alpha_A=0.5" (Params.with_alpha_alice base 0.5);
      ] );
    ( "alpha_B",
      [
        v "alpha_B=0.05" (Params.with_alpha_bob base 0.05);
        v "alpha_B=0.1" (Params.with_alpha_bob base 0.1);
        default;
        v "alpha_B=0.5" (Params.with_alpha_bob base 0.5);
      ] );
    ( "r_A",
      [
        v "r_A=0.005" (Params.with_r_alice base 0.005);
        default;
        v "r_A=0.02" (Params.with_r_alice base 0.02);
        v "r_A=0.05" (Params.with_r_alice base 0.05);
      ] );
    ( "r_B",
      [
        v "r_B=0.005" (Params.with_r_bob base 0.005);
        default;
        v "r_B=0.02" (Params.with_r_bob base 0.02);
        v "r_B=0.05" (Params.with_r_bob base 0.05);
      ] );
    ( "tau_a",
      [
        v "tau_a=1" (Params.with_tau_a base 1.);
        default;
        v "tau_a=6" (Params.with_tau_a base 6.);
        v "tau_a=12" (Params.with_tau_a base 12.);
      ] );
    ( "tau_b",
      [
        v "tau_b=2" (Params.with_tau_b base 2.);
        default;
        v "tau_b=8" (Params.with_tau_b base 8.);
        v "tau_b=16" (Params.with_tau_b base 16.);
      ] );
    ( "mu",
      [
        v "mu=-0.01" (Params.with_mu base (-0.01));
        v "mu=0" (Params.with_mu base 0.);
        default;
        v "mu=0.01" (Params.with_mu base 0.01);
      ] );
    ( "sigma",
      [
        v "sigma=0.05" (Params.with_sigma base 0.05);
        default;
        v "sigma=0.2" (Params.with_sigma base 0.2);
        v "sigma=0.4" (Params.with_sigma base 0.4);
      ] );
  ]

let sweep ?quad_nodes ?(n = 41) variants =
  List.map
    (fun variant ->
      let feasible, curve =
        Success.feasible_and_curve ?quad_nodes ~n variant.params
      in
      let best =
        Array.fold_left
          (fun acc (pt : Success.point) ->
            match acc with
            | Some (b : Success.point) when b.sr >= pt.sr -> acc
            | _ -> Some pt)
          None curve
      in
      { variant; feasible; curve; best })
    variants

let monotone_in_alpha ?quad_nodes (p : Params.t) ~alphas ~p_star =
  Array.map
    (fun alpha ->
      let p = Params.with_alpha_alice (Params.with_alpha_bob p alpha) alpha in
      (alpha, Success.analytic ?quad_nodes p ~p_star))
    alphas
