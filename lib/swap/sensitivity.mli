(** Parameter sweeps behind Figure 6: how the success-rate curve
    over exchange rates responds to the success premia, time preferences,
    confirmation times, drift and volatility. *)

type variant = { label : string; params : Params.t }

type sweep_result = {
  variant : variant;
  feasible : (float * float) option;  (** [P*] band; [None] = non-viable. *)
  curve : Success.point array;  (** Empty when non-viable. *)
  best : Success.point option;  (** SR-maximising point. *)
}

val fig6_panels : ?base:Params.t -> unit -> (string * variant list) list
(** The eight panels of Figure 6: variations of [alpha_A], [alpha_B],
    [r_A], [r_B], [tau_a], [tau_b], [mu], [sigma] around the Table III
    defaults (default [base]).  The default value is always included
    and labelled ["default"]. *)

val sweep : ?quad_nodes:int -> ?n:int -> variant list -> sweep_result list
(** Evaluates each variant's feasible band and SR curve ([n] grid
    points, default 41). *)

val monotone_in_alpha :
  ?quad_nodes:int -> Params.t -> alphas:float array -> p_star:float ->
  (float * float) array
(** [(alpha, SR)] with both agents' premia set to [alpha] — the paper's
    "higher alpha leads to higher SR" claim, used by tests. *)
