open Numerics
open Stochastic

type t = { params : Params.t; yield_a : float; yield_b : float }

let create params ~yield_a ~yield_b =
  if yield_a < 0. || yield_b < 0. then
    invalid_arg "Staking.create: negative yield";
  { params; yield_a; yield_b }

(* Alice at t3: cont forgoes Token_a yield until t6 (eps_b + tau_a h),
   stop until t8 (eps_b + 2 tau_a h); the difference is tau_a hours of
   yield on P*, which shifts the indifference price down. *)
let p_t3_low { params = p; yield_a; _ } ~p_star =
  let base_stop = exp (-.p.Params.alice.r *. (p.Params.eps_b +. (2. *. p.Params.tau_a))) in
  let net = p_star *. (base_stop -. (yield_a *. p.Params.tau_a)) in
  max 0.
    (net
    *. exp ((p.Params.alice.r -. p.Params.mu) *. p.Params.tau_b)
    /. (1. +. p.Params.alice.alpha))

(* Bob at t2: his Token_b sits locked for 2 tau_b hours when the swap
   completes (claimed at t5) and 3 tau_b hours when it is refunded at
   t7; the forgone yield is linear in the current price. *)
let b_t2_cont ({ params = p; yield_b; _ } as t) ~p_star ~p_t2 =
  let k3 = p_t3_low t ~p_star in
  let gbm = Params.gbm p in
  let prob_refund = Gbm.cdf gbm ~x:k3 ~p0:p_t2 ~tau:p.Params.tau_b in
  let expected_lock_hours =
    p.Params.tau_b *. (2. +. prob_refund)
  in
  Utility.b_t2_cont p ~p_star ~k3 ~p_t2
  -. (yield_b *. p_t2 *. expected_lock_hours)

let p_t2_band ?(scan_points = 600) t ~p_star =
  let p = t.params in
  let g x = b_t2_cont t ~p_star ~p_t2:x -. Utility.b_t2_stop ~p_t2:x in
  let domain_lo, domain_hi = Cutoff.scan_domain p ~p_star in
  let roots = Root.find_all_roots_log ~n:scan_points g ~a:domain_lo ~b:domain_hi in
  Intervals.of_sign_changes ~f:g ~roots ~domain_lo:0. ~domain_hi:infinity

let success_rate ?quad_nodes t ~p_star =
  let p = t.params in
  let k3 = p_t3_low t ~p_star in
  let band = p_t2_band t ~p_star in
  if Intervals.is_empty band then 0.
  else Success.analytic_given ?quad_nodes p ~k3 ~band

let success_curve ?quad_nodes t ~p_stars =
  Array.map
    (fun p_star -> { Success.p_star; sr = success_rate ?quad_nodes t ~p_star })
    p_stars
