(** Coin-staking extension (Section V: "coin stacking (which is similar
    to earning dividends or interest on a locked-in asset) may have an
    impact on agents' actions").

    Tokens held in a wallet earn a continuous staking yield
    ([yield_a] per hour on Token_a, [yield_b] on Token_b); tokens locked
    inside an HTLC earn nothing.  The forgone yield during a lock is an
    opportunity cost, charged linearly (first order in [yield * time],
    exact for the hour-scale horizons of the model) against the
    decision-relevant branches:

    - Alice's Token_a is locked from [t1]; at [t3] the remaining cost is
      [yield_a * P* * (t8 - t3)] on stop (funds idle until the refund)
      and [yield_a * P* * (t6 - t3)] on cont (they leave her at [t6]);
    - Bob's Token_b is locked from [t2] until [t5] (claimed) or [t7]
      (refunded), costing [yield_b * value * duration].

    With both yields zero every quantity reduces to the baseline
    exactly (tested). *)

type t = private { params : Params.t; yield_a : float; yield_b : float }

val create : Params.t -> yield_a:float -> yield_b:float -> t
(** @raise Invalid_argument on negative yields. *)

val p_t3_low : t -> p_star:float -> float
(** Alice's [t3] cutoff with staking costs; closed form (the cost terms
    are constants and linear-in-price terms). *)

val b_t2_cont : t -> p_star:float -> p_t2:float -> float
(** Bob's continuation value at [t2] net of his expected forgone
    Token_b yield. *)

val p_t2_band : ?scan_points:int -> t -> p_star:float -> Intervals.t

val success_rate : ?quad_nodes:int -> t -> p_star:float -> float

val success_curve :
  ?quad_nodes:int -> t -> p_stars:float array -> Success.point array
