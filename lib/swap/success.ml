open Numerics
open Stochastic

type point = { p_star : float; sr : float }

let analytic_given ?quad_nodes (p : Params.t) ~k3 ~band =
  let gbm = Params.gbm p in
  let integrand x =
    Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a
    *. Gbm.sf gbm ~x:k3 ~p0:x ~tau:p.tau_b
  in
  Utility.integrate_over ?quad_nodes band ~f:integrand

let analytic ?quad_nodes (p : Params.t) ~p_star =
  let k3 = Cutoff.p_t3_low p ~p_star in
  let band = Cutoff.p_t2_band p ~p_star in
  if Intervals.is_empty band then 0.
  else analytic_given ?quad_nodes p ~k3 ~band

let curve ?quad_nodes p ~p_stars =
  Array.map (fun p_star -> { p_star; sr = analytic ?quad_nodes p ~p_star }) p_stars

let maximize ?quad_nodes ?(grid = 40) (p : Params.t) =
  match Cutoff.p_star_band_endpoints p with
  | None -> None
  | Some (lo, hi) ->
    let f p_star = analytic ?quad_nodes p ~p_star in
    let x, sr = Minimize.grid_then_golden ~grid ~tol:1e-9 f ~a:lo ~b:hi in
    Some { p_star = x; sr }

let feasible_and_curve ?quad_nodes ?(n = 41) (p : Params.t) =
  match Cutoff.p_star_band_endpoints p with
  | None -> (None, [||])
  | Some (lo, hi) ->
    let pad = 1e-6 *. (hi -. lo) in
    let p_stars = Grid.linspace ~lo:(lo +. pad) ~hi:(hi -. pad) ~n in
    (Some (lo, hi), curve ?quad_nodes p ~p_stars)
