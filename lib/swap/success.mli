(** Swap success rate (Eq. 31): the probability that the swap completes
    {e given} Alice initiated at [t1] — i.e. that [P_{t2}] lands in
    Bob's continuation band and [P_{t3}] then stays above Alice's
    cutoff. *)

val analytic : ?quad_nodes:int -> Params.t -> p_star:float -> float
(** Eq. 31 by Gauss–Legendre quadrature over Bob's band; 0. when the
    band is empty. *)

val analytic_given :
  ?quad_nodes:int -> Params.t -> k3:float -> band:Intervals.t -> float
(** Same integral with precomputed cutoffs — reused by the collateral
    and premium variants and by sweeps. *)

type point = { p_star : float; sr : float }

val curve :
  ?quad_nodes:int -> Params.t -> p_stars:float array -> point array
(** SR at each requested exchange rate. *)

val maximize :
  ?quad_nodes:int -> ?grid:int -> Params.t -> point option
(** SR-maximising [P*] within the feasible band ({!Cutoff.p_star_band});
    [None] when no feasible rate exists.  Grid search refined by golden
    section. *)

val feasible_and_curve :
  ?quad_nodes:int -> ?n:int -> Params.t -> (float * float) option * point array
(** Convenience for the Figure 6 panels: the feasible [P*] band and the
    SR curve sampled on [n] points across it (empty when infeasible). *)
