type t = {
  t0 : float;
  t1 : float;
  t2 : float;
  t3 : float;
  t4 : float;
  t5 : float;
  t6 : float;
  t7 : float;
  t8 : float;
  t_lock_a : float;
  t_lock_b : float;
}

let ideal ?(start = 0.) (p : Params.t) =
  let t0 = start in
  let t1 = t0 in
  let t2 = t1 +. p.Params.tau_a in
  let t3 = t2 +. p.Params.tau_b in
  let t4 = t3 +. p.Params.eps_b in
  let t5 = t3 +. p.Params.tau_b in
  let t6 = t4 +. p.Params.tau_a in
  let t_lock_b = t5 in
  let t_lock_a = t6 in
  let t7 = t_lock_b +. p.Params.tau_b in
  let t8 = t_lock_a +. p.Params.tau_a in
  { t0; t1; t2; t3; t4; t5; t6; t7; t8; t_lock_a; t_lock_b }

let slacked ?(start = 0.) ?(delay_t2 = 0.) ?(delay_t3 = 0.) (p : Params.t) =
  if delay_t2 < 0. || delay_t3 < 0. then
    invalid_arg "Timeline.slacked: negative slack";
  let t0 = start in
  let t1 = t0 in
  (* Each decision waits its slack beyond the minimum of Eq. 5/6, and
     each lock expires the same slack after the earliest possible
     claim receipt — so every leg on chain_a (resp. chain_b) carries
     [delay_t2] (resp. [delay_t3]) of genuine retry margin while all
     Eq. 12 inequalities continue to hold. *)
  let t2 = t1 +. p.Params.tau_a +. delay_t2 in
  let t3 = t2 +. p.Params.tau_b +. delay_t3 in
  let t4 = t3 +. p.Params.eps_b in
  let t5 = t3 +. p.Params.tau_b in
  let t6 = t4 +. p.Params.tau_a in
  let t_lock_b = t5 +. delay_t3 in
  let t_lock_a = t6 +. delay_t2 in
  let t7 = t_lock_b +. p.Params.tau_b in
  let t8 = t_lock_a +. p.Params.tau_a in
  { t0; t1; t2; t3; t4; t5; t6; t7; t8; t_lock_a; t_lock_b }

let check (p : Params.t) t =
  let tau_a = p.Params.tau_a and tau_b = p.Params.tau_b in
  let eps_b = p.Params.eps_b in
  let violations = ref [] in
  let require cond msg = if not cond then violations := msg :: !violations in
  (* Eq. 4–11 combined as Eq. 12. *)
  require (t.t1 >= t.t0) "t1 >= t0 (Eq. 4)";
  require (t.t2 >= t.t1 +. tau_a) "t2 >= t1 + tau_a (Eq. 5)";
  require (t.t3 >= t.t2 +. tau_b) "t3 >= t2 + tau_b (Eq. 6)";
  require (t.t4 >= t.t3 +. eps_b) "t4 >= t3 + eps_b (Eq. 7)";
  require (eps_b < tau_b) "eps_b < tau_b (Eq. 3)";
  require
    (abs_float (t.t5 -. (t.t3 +. tau_b)) < 1e-9 && t.t5 <= t.t_lock_b)
    "t5 = t3 + tau_b <= t_b (Eq. 8)";
  require
    (abs_float (t.t6 -. (t.t4 +. tau_a)) < 1e-9 && t.t6 <= t.t_lock_a)
    "t6 = t4 + tau_a <= t_a (Eq. 9)";
  require
    (abs_float (t.t7 -. (t.t_lock_b +. tau_b)) < 1e-9)
    "t7 = t_b + tau_b (Eq. 10)";
  require
    (abs_float (t.t8 -. (t.t_lock_a +. tau_a)) < 1e-9)
    "t8 = t_a + tau_a (Eq. 11)";
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)

let duration_success t = max t.t5 t.t6 -. t.t0
let duration_failure t = max t.t7 t.t8 -. t.t0

let to_string t =
  Printf.sprintf
    "t0=%g t1=%g t2=%g t3=%g t4=%g t5=%g t6=%g t7=%g t8=%g t_a=%g t_b=%g" t.t0
    t.t1 t.t2 t.t3 t.t4 t.t5 t.t6 t.t7 t.t8 t.t_lock_a t.t_lock_b
