(** The swap timeline (Section III-B/C).

    Under the zero-waiting-time idealisation (Eq. 13) every decision
    and receipt time is pinned down by [tau_a], [tau_b] and [eps_b]. *)

type t = {
  t0 : float;  (** Agreement; secret generated. *)
  t1 : float;  (** A locks [p_star] Token_a on Chain_a ([= t0]). *)
  t2 : float;  (** B locks 1 Token_b on Chain_b ([= t1 + tau_a]). *)
  t3 : float;  (** A reveals the secret on Chain_b ([= t2 + tau_b]). *)
  t4 : float;  (** B claims on Chain_a ([= t3 + eps_b]). *)
  t5 : float;  (** A receives Token_b ([= t3 + tau_b = t_lock_b]). *)
  t6 : float;  (** B receives Token_a ([= t4 + tau_a = t_lock_a]). *)
  t7 : float;  (** B's refund receipt on failure ([= t_lock_b + tau_b]). *)
  t8 : float;  (** A's refund receipt on failure ([= t_lock_a + tau_a]). *)
  t_lock_a : float;  (** HTLC expiry on Chain_a ([t_a] in the paper). *)
  t_lock_b : float;  (** HTLC expiry on Chain_b ([t_b] in the paper). *)
}

val ideal : ?start:float -> Params.t -> t
(** Eq. 13 schedule starting at [start] (default 0.). *)

val slacked : ?start:float -> ?delay_t2:float -> ?delay_t3:float -> Params.t -> t
(** Eq. 12-conforming schedule with margin: decisions at [t2]/[t3] wait
    [delay_t2]/[delay_t3] beyond the Eq. 5/6 minimum, and each lock
    expiry stretches by the same slack past the earliest claim receipt
    — so chain_a legs carry [delay_t2] of retry margin and chain_b legs
    [delay_t3].  With both zero this is exactly {!ideal}; {!check}
    passes for any nonnegative slack.
    @raise Invalid_argument on negative slack. *)

val check : Params.t -> t -> (unit, string list) result
(** Verifies every inequality of Eq. 12 (the general protocol
    constraints); returns all violations. *)

val duration_success : t -> float
(** Time from [t0] until the later of [t5] and [t6]. *)

val duration_failure : t -> float
(** Time from [t0] until the later of [t7] and [t8]. *)

val to_string : t -> string
