open Numerics
open Stochastic

let discount ~r ~horizon = exp (-.r *. horizon)

(* --- t3 ------------------------------------------------------------- *)

let a_t3_cont (p : Params.t) ~p_t3 =
  let expectation = Gbm.expectation (Params.gbm p) ~p0:p_t3 ~tau:p.tau_b in
  (1. +. p.alice.alpha) *. expectation *. discount ~r:p.alice.r ~horizon:p.tau_b

let b_t3_cont (p : Params.t) ~p_star =
  (1. +. p.bob.alpha) *. p_star
  *. discount ~r:p.bob.r ~horizon:(p.eps_b +. p.tau_a)

let a_t3_stop (p : Params.t) ~p_star =
  p_star *. discount ~r:p.alice.r ~horizon:(p.eps_b +. (2. *. p.tau_a))

let b_t3_stop (p : Params.t) ~p_t3 =
  let expectation =
    Gbm.expectation (Params.gbm p) ~p0:p_t3 ~tau:(2. *. p.tau_b)
  in
  expectation *. discount ~r:p.bob.r ~horizon:(2. *. p.tau_b)

(* --- t2 ------------------------------------------------------------- *)

let a_t2_stop (p : Params.t) ~p_star =
  p_star
  *. discount ~r:p.alice.r ~horizon:(p.tau_b +. p.eps_b +. (2. *. p.tau_a))

let b_t2_stop ~p_t2 = p_t2

(* Eq. 20.  The integrand over (k3, inf) is
   pdf(x) * (1 + alpha_A) x e^{(mu - r_A) tau_b}, whose integral is the
   partial expectation E[X 1_{X > k3}] scaled by the constant. *)
let a_t2_cont (p : Params.t) ~p_star ~k3 ~p_t2 =
  let gbm = Params.gbm p in
  let cont_part =
    (1. +. p.alice.alpha)
    *. exp ((p.mu -. p.alice.r) *. p.tau_b)
    *. Gbm.partial_expectation_above gbm ~k:k3 ~p0:p_t2 ~tau:p.tau_b
  in
  let stop_part =
    Gbm.cdf gbm ~x:k3 ~p0:p_t2 ~tau:p.tau_b *. a_t3_stop p ~p_star
  in
  (cont_part +. stop_part) *. discount ~r:p.alice.r ~horizon:p.tau_b

(* Eq. 21.  Bob's stop payoff at t3 is x e^{2 (mu - r_B) tau_b}; its
   integral over (0, k3) is the lower partial expectation. *)
let b_t2_cont (p : Params.t) ~p_star ~k3 ~p_t2 =
  let gbm = Params.gbm p in
  let cont_part =
    Gbm.sf gbm ~x:k3 ~p0:p_t2 ~tau:p.tau_b *. b_t3_cont p ~p_star
  in
  let stop_part =
    exp (2. *. (p.mu -. p.bob.r) *. p.tau_b)
    *. Gbm.partial_expectation_below gbm ~k:k3 ~p0:p_t2 ~tau:p.tau_b
  in
  (cont_part +. stop_part) *. discount ~r:p.bob.r ~horizon:p.tau_b

(* --- generic quadrature over interval sets --------------------------- *)

let integrate_over ?(quad_nodes = 96) set ~f =
  List.fold_left
    (fun acc { Intervals.lo; hi } ->
      if hi = infinity then
        acc +. Integrate.semi_infinite ~n:quad_nodes f ~a:lo
      else acc +. Integrate.gauss_legendre ~n:quad_nodes f ~a:lo ~b:hi)
    0.
    (Intervals.intervals set)

(* --- t1 ------------------------------------------------------------- *)

let a_t1_stop ~p_star = p_star
let b_t1_stop (p : Params.t) = p.Params.p0

(* Probability mass of the transition law inside an interval set. *)
let transition_mass (p : Params.t) ~tau ~p0 set =
  let gbm = Params.gbm p in
  List.fold_left
    (fun acc { Intervals.lo; hi } ->
      let upper =
        if hi = infinity then 1. else Gbm.cdf gbm ~x:hi ~p0 ~tau
      in
      acc +. (upper -. Gbm.cdf gbm ~x:lo ~p0 ~tau))
    0.
    (Intervals.intervals set)

(* Partial expectation of the price inside the set. *)
let price_mass_inside (p : Params.t) ~tau ~p0 set =
  let gbm = Params.gbm p in
  List.fold_left
    (fun acc { Intervals.lo; hi } ->
      let upper =
        if hi = infinity then Gbm.expectation gbm ~p0 ~tau
        else Gbm.partial_expectation_below gbm ~k:hi ~p0 ~tau
      in
      acc +. (upper -. Gbm.partial_expectation_below gbm ~k:lo ~p0 ~tau))
    0.
    (Intervals.intervals set)

let a_t1_cont ?quad_nodes (p : Params.t) ~p_star ~k3 ~band =
  let gbm = Params.gbm p in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a in
  let cont_part =
    integrate_over ?quad_nodes band ~f:(fun x ->
        pdf x *. a_t2_cont p ~p_star ~k3 ~p_t2:x)
  in
  let stop_part =
    (1. -. transition_mass p ~tau:p.tau_a ~p0:p.p0 band) *. a_t2_stop p ~p_star
  in
  (cont_part +. stop_part) *. discount ~r:p.alice.r ~horizon:p.tau_a

(* Expected price mass outside the band:
   E[X 1_{X outside}] = E[X] - sum over band of segment partial
   expectations. *)
let b_t1_cont ?quad_nodes (p : Params.t) ~p_star ~k3 ~band =
  let gbm = Params.gbm p in
  let pdf x = Gbm.pdf gbm ~x ~p0:p.p0 ~tau:p.tau_a in
  let cont_part =
    integrate_over ?quad_nodes band ~f:(fun x ->
        pdf x *. b_t2_cont p ~p_star ~k3 ~p_t2:x)
  in
  let outside_price_mass =
    Gbm.expectation gbm ~p0:p.p0 ~tau:p.tau_a
    -. price_mass_inside p ~tau:p.tau_a ~p0:p.p0 band
  in
  (cont_part +. outside_price_mass) *. discount ~r:p.bob.r ~horizon:p.tau_a
