(** The agents' expected utilities at each decision point
    (Eqs. 14–17, 20–23, 25–28), in closed form where possible.

    Conventions: utilities are assessed at the decision time and
    denominated in Token_a (Assumption 3).  [k3] is Alice's [t3]
    continuation cutoff [P_t3_low] ({!Cutoff.p_t3_low}); [band] is Bob's
    [t2] continuation region ({!Cutoff.p_t2_band}).  Both are passed
    explicitly so the same formulas serve the baseline and the
    collateral/premium variants. *)

val discount : r:float -> horizon:float -> float
(** [exp (-. r *. horizon)]. *)

(* --- t3: Alice decides reveal (cont) vs waive (stop) --- *)

val a_t3_cont : Params.t -> p_t3:float -> float
(** Eq. 14: [(1 + alpha_A) E(P_t3, tau_b) / e^{r_A tau_b}]. *)

val b_t3_cont : Params.t -> p_star:float -> float
(** Eq. 15: [(1 + alpha_B) P* / e^{r_B (eps_b + tau_a)}]. *)

val a_t3_stop : Params.t -> p_star:float -> float
(** Eq. 16: [P* / e^{r_A (eps_b + 2 tau_a)}]. *)

val b_t3_stop : Params.t -> p_t3:float -> float
(** Eq. 17: [E(P_t3, 2 tau_b) / e^{2 r_B tau_b}]. *)

(* --- t2: Bob decides to deploy his HTLC (cont) vs withdraw (stop) --- *)

val a_t2_cont : Params.t -> p_star:float -> k3:float -> p_t2:float -> float
(** Eq. 20, via the closed-form partial lognormal expectation. *)

val b_t2_cont : Params.t -> p_star:float -> k3:float -> p_t2:float -> float
(** Eq. 21. *)

val a_t2_stop : Params.t -> p_star:float -> float
(** Eq. 22: [P* / e^{r_A (tau_b + eps_b + 2 tau_a)}]. *)

val b_t2_stop : p_t2:float -> float
(** Eq. 23: [P_t2]. *)

(* --- t1: Alice decides to initiate (cont) vs not (stop) --- *)

val a_t1_cont :
  ?quad_nodes:int -> Params.t -> p_star:float -> k3:float ->
  band:Intervals.t -> float
(** Eq. 25, integrating Alice's [t2] value over Bob's continuation
    region under the [tau_a]-transition from [p0]. *)

val b_t1_cont :
  ?quad_nodes:int -> Params.t -> p_star:float -> k3:float ->
  band:Intervals.t -> float
(** Eq. 26. *)

val a_t1_stop : p_star:float -> float
(** Eq. 27: [P*]. *)

val b_t1_stop : Params.t -> float
(** Eq. 28: [P_t1 = p0]. *)

val integrate_over :
  ?quad_nodes:int -> Intervals.t -> f:(float -> float) -> float
(** Integral of [f] over an interval set; unbounded tails are handled
    with a decaying-transform quadrature.  Exposed for the collateral
    and premium variants. *)

val transition_mass :
  Params.t -> tau:float -> p0:float -> Intervals.t -> float
(** Probability that the price, starting at [p0], lands inside the set
    after [tau] hours. *)

val price_mass_inside :
  Params.t -> tau:float -> p0:float -> Intervals.t -> float
(** Partial expectation [E\[P 1_inside\]] of the same transition —
    the building block of the Eq. 26-style "keep the token" terms. *)
