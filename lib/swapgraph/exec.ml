(* Full protocol execution of a swap graph on simulated chains — the
   N-party generalisation of Swap.Multihop.run.

   One chain per arc (the ledger carrying that transfer's asset), all
   locks hashed to one secret held by the leader.  The lock phase
   walks parties in canonical decision order: each locks every
   outgoing arc at its level's lock time, unless it is offline or its
   policy declines.  Once all locks confirm the leader decides the
   reveal; claims then cascade along the timelock schedule, each arc
   claimed by its recipient at its scheduled claim time.  Anything
   unclaimed refunds at expiry, so the final contract states classify
   the run: all claimed (atomic success), all refunded (clean abort),
   or mixed — the atomicity anomaly a mid-cascade crash produces. *)

open Chainsim

type decision = Cont | Stop

type outcome =
  | Success
  | Abort_at_lock of int
  | Abort_no_reveal
  | Anomalous of string

type result = {
  outcome : outcome;
  deltas : (float * float) array;
  trace : (float * string) list;
}

let party_name v = Printf.sprintf "party%d" v
let contract_name a = Printf.sprintf "hop:%d" a

let run ?(decisions = fun _v ~price:_ -> Cont) ?(offline = [])
    ?(prices = fun _a _t -> 2.) ?(seed = 0xcafe) g (s : Timelock.schedule) =
  let arcs = Graph.arcs g in
  let n_arcs = Array.length arcs in
  let trace = ref [] in
  let log t msg = trace := (t, msg) :: !trace in
  let online v at =
    not (List.exists (fun (j, from) -> j = v && at >= from) offline)
  in
  let chains =
    Array.init n_arcs (fun a ->
        Chain.create
          ~name:(Printf.sprintf "chain%d" a)
          ~token:(Printf.sprintf "asset%d" a)
          ~tau:s.Timelock.tau ~mempool_delay:s.Timelock.eps ())
  in
  Array.iteri
    (fun a arc ->
      Chain.mint chains.(a) ~account:(party_name arc.Graph.src) ~amount:1.)
    arcs;
  let secret = Secret.generate (Numerics.Rng.create ~seed ()) in
  let finish outcome =
    Array.iter
      (fun c -> ignore (Chain.advance c ~until:s.Timelock.horizon))
      chains;
    let deltas =
      Array.init (Graph.n g) (fun v ->
          let sum f l = List.fold_left (fun acc a -> acc +. f a) 0. l in
          let outgoing =
            sum
              (fun a -> Chain.balance chains.(a) ~account:(party_name v) -. 1.)
              (Graph.out_arcs g v)
          in
          let incoming =
            sum
              (fun a -> Chain.balance chains.(a) ~account:(party_name v))
              (Graph.in_arcs g v)
          in
          (outgoing, incoming))
    in
    { outcome; deltas; trace = List.rev !trace }
  in
  let lock_arc a at =
    let arc = arcs.(a) in
    log at
      (Printf.sprintf "%s locks asset%d for %s" (party_name arc.Graph.src) a
         (party_name arc.Graph.dst));
    ignore
      (Chain.submit chains.(a) ~at
         (Tx.Htlc_lock
            {
              contract_id = contract_name a;
              sender = party_name arc.Graph.src;
              recipient = party_name arc.Graph.dst;
              amount = 1.;
              hash = secret.Secret.hash;
              expiry = s.Timelock.expiry.(a);
            }));
    ignore (Chain.advance chains.(a) ~until:(at +. s.Timelock.tau))
  in
  (* Lock phase, level by level away from the leader.  A party's
     strategic exit is before its own locks; the leader's is the
     reveal, so it locks unconditionally (like Alice's t1). *)
  let order = Graph.decision_order g in
  let rec lock_phase i =
    if i >= Array.length order then None
    else begin
      let v = order.(i) in
      let out = Graph.out_arcs g v in
      let at = s.Timelock.lock_time.(List.hd out) in
      let decision =
        if not (online v at) then begin
          log at (Printf.sprintf "%s offline: no lock" (party_name v));
          Stop
        end
        else if v = Graph.leader g then Cont
        else decisions v ~price:(prices (List.hd out) at)
      in
      match decision with
      | Stop ->
        if online v at then
          log at
            (Printf.sprintf "%s declines to lock (price %g)" (party_name v)
               (prices (List.hd out) at));
        Some v
      | Cont ->
        List.iter (fun a -> lock_arc a at) out;
        lock_phase (i + 1)
    end
  in
  match lock_phase 0 with
  | Some v -> finish (Abort_at_lock v)
  | None ->
    let reveal_at = s.Timelock.lock_phase_end in
    let leader = Graph.leader g in
    let leader_price = prices (List.hd (Graph.in_arcs g leader)) reveal_at in
    let leader_decision =
      if not (online leader reveal_at) then begin
        log reveal_at "leader offline: secret never revealed";
        Stop
      end
      else decisions leader ~price:leader_price
    in
    (match leader_decision with
    | Stop ->
      if online leader reveal_at then
        log reveal_at "leader withholds the secret"
    | Cont ->
      log reveal_at "leader reveals the secret";
      (* Claims cascade in schedule order; each arc's recipient claims
         at its scheduled time if still online. *)
      let by_time = Array.init n_arcs (fun a -> a) in
      Array.sort
        (fun a b ->
          match compare s.Timelock.claim_time.(a) s.Timelock.claim_time.(b) with
          | 0 -> compare a b
          | c -> c)
        by_time;
      Array.iter
        (fun a ->
          let at = s.Timelock.claim_time.(a) in
          let claimer = arcs.(a).Graph.dst in
          if online claimer at then begin
            log at (Printf.sprintf "%s claims asset%d" (party_name claimer) a);
            ignore
              (Chain.submit chains.(a) ~at
                 (Tx.Htlc_claim
                    {
                      contract_id = contract_name a;
                      preimage = secret.Secret.preimage;
                    }))
          end
          else
            log at
              (Printf.sprintf "%s offline: claim missed" (party_name claimer)))
        by_time);
    Array.iter
      (fun c -> ignore (Chain.advance c ~until:s.Timelock.horizon))
      chains;
    let states =
      Array.init n_arcs (fun a ->
          match Chain.htlc chains.(a) ~contract_id:(contract_name a) with
          | Some h -> h.Htlc.state
          | None -> Htlc.Refunded { at = 0. })
    in
    let claimed =
      Array.for_all (function Htlc.Claimed _ -> true | _ -> false) states
    in
    let refunded =
      Array.for_all (function Htlc.Refunded _ -> true | _ -> false) states
    in
    if claimed then finish Success
    else if refunded then finish Abort_no_reveal
    else
      finish
        (Anomalous
           (String.concat ", "
              (Array.to_list
                 (Array.mapi
                    (fun a st ->
                      Printf.sprintf "hop%d=%s" a (Htlc.state_to_string st))
                    states))))
