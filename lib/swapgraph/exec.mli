(** Full protocol execution of a swap graph on simulated chains — the
    N-party generalisation of [Swap.Multihop.run].  One chain per arc,
    all locks hashed to the leader's secret, locks confirmed level by
    level, claims cascading along the timelock schedule; final HTLC
    states classify the run. *)

type decision = Cont | Stop

type outcome =
  | Success
  | Abort_at_lock of int
      (** Party declined (or was offline) before locking; earlier
          levels refund at expiry. *)
  | Abort_no_reveal  (** All locked but the leader withheld the secret. *)
  | Anomalous of string
      (** Mixed claimed/refunded final states — atomicity broken (e.g.
          a party crashed mid-cascade and missed its claim). *)

type result = {
  outcome : outcome;
  deltas : (float * float) array;
      (** Per party: (outgoing-asset change, incoming-asset change),
          summed over its arcs. *)
  trace : (float * string) list;
}

val run :
  ?decisions:(int -> price:float -> decision) ->
  ?offline:(int * float) list ->
  ?prices:(int -> float -> float) ->
  ?seed:int ->
  Graph.t ->
  Timelock.schedule ->
  result
(** [decisions v ~price] is party [v]'s choice at its action point
    (leader: the reveal; others: before their locks) given the price of
    its deciding leg; default: everyone continues.  [offline] lists
    (party, crash time) pairs.  [prices a t] is arc [a]'s price at time
    [t] (default: constant 2).  [seed] feeds only the secret
    generation. *)
