(* The swap graph as a finite extensive-form game, solved by backward
   induction with lib/gametree.

   Move order is the protocol's own: non-leader parties decide
   lock-or-abort in canonical decision order (leader distance, then
   index), and once every lock is in place the leader decides
   reveal-or-withhold.  Each abort ends the game — earlier locks
   refund at their expiries — so the tree is a chain of binary
   decisions, one per party, and the subgame-perfect equilibrium is
   exactly the paper's sequential-rationality analysis lifted to N
   parties: the swap completes iff no party strictly prefers its
   outside option at its own node.

   Payoffs are injected per terminal: the caller (typically
   [Swap.Graphlink]) prices premiums and time-value from the model
   parameters and the timelock schedule; this module only knows the
   shape of the game. *)

type payoffs = {
  success : float array;
  no_reveal : float array;
  abort_at : int -> float array;
}

(* Abort/withhold is listed first at every node: gametree resolves
   ties to the first action, and the paper resolves indifference to
   stopping (Alice's t3 tie). *)
let build g payoffs =
  let order = Graph.decision_order g in
  let leader = Graph.leader g in
  let reveal_node =
    Gametree.Game.decision ~label:"reveal" ~player:leader
      [
        ("withhold", Gametree.Game.terminal ~label:"no_reveal" payoffs.no_reveal);
        ("reveal", Gametree.Game.terminal ~label:"success" payoffs.success);
      ]
  in
  let rec locks i =
    if i >= Array.length order then reveal_node
    else begin
      let v = order.(i) in
      if v = leader then locks (i + 1)
      else
        Gametree.Game.decision
          ~label:(Printf.sprintf "lock:%d" v)
          ~player:v
          [
            ( "abort",
              Gametree.Game.terminal
                ~label:(Printf.sprintf "abort@%d" v)
                (payoffs.abort_at v) );
            ("lock", locks (i + 1));
          ]
    end
  in
  locks 0

type analysis = {
  solved : Gametree.Solve.solved;
  equilibrium : float array;
  conforming : float array;
  success : bool;
  deviator : int option;
}

let analyse g payoffs =
  let solved = Gametree.Solve.solve (build g payoffs) in
  (* Walk the principal line: the first chosen abort/withhold names
     the deviating party; reaching "success" means conforming play is
     subgame perfect. *)
  let rec principal = function
    | Gametree.Solve.S_terminal { label; _ } -> (label = "success", None)
    | Gametree.Solve.S_decision { player; chosen; branches; _ } ->
      if chosen = "abort" || chosen = "withhold" then (false, Some player)
      else principal (List.assoc chosen branches)
    | Gametree.Solve.S_chance { branches; _ } -> (
      match branches with
      | (_, b) :: _ -> principal b
      | [] -> (false, None))
  in
  let success, deviator = principal solved in
  {
    solved;
    equilibrium = Gametree.Solve.value solved;
    conforming = Array.copy payoffs.success;
    success;
    deviator;
  }
