(** The swap graph as a finite extensive-form game, solved by backward
    induction ([Gametree.Solve]).

    Parties move in protocol order: non-leaders choose lock-or-abort by
    canonical decision order, then the leader chooses
    reveal-or-withhold.  Any abort ends the game (earlier locks refund
    at expiry).  Abort is listed first at every node, so indifference
    resolves to stopping — the paper's tie rule. *)

type payoffs = {
  success : float array;  (** Per-vertex utility when every leg claims. *)
  no_reveal : float array;
      (** Everyone locked, leader withheld: refunds at expiry. *)
  abort_at : int -> float array;
      (** [abort_at v]: utilities when [v] declines at its lock node
          (parties that acted before [v] refund at expiry). *)
}

val build : Graph.t -> payoffs -> Gametree.Game.t

type analysis = {
  solved : Gametree.Solve.solved;
  equilibrium : float array;  (** Subgame-perfect value per vertex. *)
  conforming : float array;  (** The all-continue payoffs ([success]). *)
  success : bool;
      (** Conforming play is subgame perfect: no party strictly prefers
          its outside option at its own decision node. *)
  deviator : int option;
      (** First party on the principal line that aborts/withholds. *)
}

val analyse : Graph.t -> payoffs -> analysis
