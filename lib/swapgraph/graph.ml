(* Swap digraphs in the sense of Herlihy (PODC 2018): parties are
   vertices, each arc is one HTLC transfer from its source to its
   destination, and one distinguished vertex — the leader — holds the
   hash preimage.  The protocol is well formed when the digraph is
   strongly connected and every party both gives and receives, so the
   secret's revelation can propagate a claim to every arc.

   Arcs are kept in one canonical order (sorted by (src, dst)); every
   consumer — timelock assignment, execution, Monte Carlo, JSON
   emission — iterates that order, which is what makes whole-sweep
   results reproducible byte-for-byte. *)

type arc = { src : int; dst : int }

type t = {
  n : int;
  leader : int;
  arcs : arc array;
  depths : int array;
  max_depth : int;
  out_by_vertex : int list array;
  in_by_vertex : int list array;
}

let n t = t.n
let leader t = t.leader
let arcs t = t.arcs
let arc_count t = Array.length t.arcs
let depth t v = t.depths.(v)
let depths t = Array.copy t.depths
let max_depth t = t.max_depth
let out_arcs t v = t.out_by_vertex.(v)
let in_arcs t v = t.in_by_vertex.(v)

let compare_arc a b =
  match compare a.src b.src with 0 -> compare a.dst b.dst | c -> c

(* BFS from [leader] along forward arcs; -1 marks unreachable. *)
let bfs_depths ~n ~leader out_by_vertex arcs =
  let d = Array.make n (-1) in
  d.(leader) <- 0;
  let q = Queue.create () in
  Queue.push leader q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun ai ->
        let v = arcs.(ai).dst in
        if d.(v) < 0 then begin
          d.(v) <- d.(u) + 1;
          Queue.push v q
        end)
      out_by_vertex.(u)
  done;
  d

let make ?(leader = 0) ~n pairs =
  if n < 2 then Error "graph: need at least 2 parties"
  else if leader < 0 || leader >= n then Error "graph: leader out of range"
  else begin
    let arcs =
      pairs |> List.map (fun (src, dst) -> { src; dst }) |> Array.of_list
    in
    Array.sort compare_arc arcs;
    let dup = ref None and bad = ref None in
    Array.iteri
      (fun i a ->
        if a.src < 0 || a.src >= n || a.dst < 0 || a.dst >= n then
          bad := Some a
        else if a.src = a.dst then bad := Some a
        else if i > 0 && compare_arc arcs.(i - 1) a = 0 then dup := Some a)
      arcs;
    match (!bad, !dup) with
    | Some a, _ -> Error (Printf.sprintf "graph: invalid arc %d->%d" a.src a.dst)
    | _, Some a ->
      Error (Printf.sprintf "graph: duplicate arc %d->%d" a.src a.dst)
    | None, None ->
      let out_by_vertex = Array.make n [] and in_by_vertex = Array.make n [] in
      (* Reverse iteration keeps each per-vertex list ascending. *)
      for i = Array.length arcs - 1 downto 0 do
        let a = arcs.(i) in
        out_by_vertex.(a.src) <- i :: out_by_vertex.(a.src);
        in_by_vertex.(a.dst) <- i :: in_by_vertex.(a.dst)
      done;
      let missing = ref None in
      for v = n - 1 downto 0 do
        if out_by_vertex.(v) = [] || in_by_vertex.(v) = [] then
          missing := Some v
      done;
      (match !missing with
      | Some v ->
        Error
          (Printf.sprintf "graph: party %d must both give and receive" v)
      | None ->
        let depths = bfs_depths ~n ~leader out_by_vertex arcs in
        if Array.exists (fun d -> d < 0) depths then
          Error "graph: not every party is reachable from the leader"
        else begin
          (* Strong connectivity: everyone must also reach the leader
             (BFS on the transposed graph). *)
          let rev_out = Array.make n [] in
          Array.iteri
            (fun i a -> rev_out.(a.dst) <- i :: rev_out.(a.dst))
            arcs;
          let back =
            bfs_depths ~n ~leader rev_out
              (Array.map (fun a -> { src = a.dst; dst = a.src }) arcs)
          in
          if Array.exists (fun d -> d < 0) back then
            Error "graph: not strongly connected"
          else
            Ok
              {
                n;
                leader;
                arcs;
                depths;
                max_depth = Array.fold_left max 0 depths;
                out_by_vertex;
                in_by_vertex;
              }
        end)
  end

let make_exn ?leader ~n pairs =
  match make ?leader ~n pairs with
  | Ok g -> g
  | Error msg -> invalid_arg ("Swapgraph.Graph.make: " ^ msg)

let equal a b =
  a.n = b.n && a.leader = b.leader && a.arcs = b.arcs

let signature t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "n=%d;leader=%d;" t.n t.leader);
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%d>%d" a.src a.dst))
    t.arcs;
  Buffer.contents b

(* Vertices in canonical decision order: by leader distance, then
   index.  The leader comes first (depth 0); execution and the game
   reduction both walk this order. *)
let decision_order t =
  let vs = Array.init t.n (fun v -> v) in
  Array.sort
    (fun u v ->
      match compare t.depths.(u) t.depths.(v) with
      | 0 -> compare u v
      | c -> c)
    vs;
  vs
