(** Swap digraphs (Herlihy, PODC 2018): parties as vertices, HTLC
    transfers as arcs, one leader holding the hash preimage.  A graph
    is well formed when it is strongly connected and every party both
    gives and receives, so a revealed secret can propagate claims to
    every arc.

    Arcs are held in a canonical order (sorted by [(src, dst)]); every
    consumer iterates that order, which makes downstream results —
    timelocks, executions, sweeps — reproducible byte-for-byte. *)

type arc = { src : int; dst : int }

type t

val make : ?leader:int -> n:int -> (int * int) list -> (t, string) result
(** [make ~n pairs] builds the graph on parties [0..n-1] with one arc
    per [(src, dst)] pair (default [leader = 0]).  Rejects self-loops,
    duplicates, out-of-range endpoints, parties that do not both give
    and receive, and graphs that are not strongly connected. *)

val make_exn : ?leader:int -> n:int -> (int * int) list -> t
(** @raise Invalid_argument where {!make} returns [Error]. *)

val n : t -> int
val leader : t -> int

val arcs : t -> arc array
(** Canonical arc order; indices into this array identify arcs
    everywhere (timelocks, chains, contracts). *)

val arc_count : t -> int

val depth : t -> int -> int
(** BFS distance from the leader along forward arcs. *)

val depths : t -> int array
val max_depth : t -> int

val out_arcs : t -> int -> int list
(** Ascending arc indices leaving the vertex (never empty). *)

val in_arcs : t -> int -> int list
(** Ascending arc indices entering the vertex (never empty). *)

val decision_order : t -> int array
(** All vertices sorted by (leader distance, index) — the order in
    which parties act during the lock phase; the leader is first. *)

val equal : t -> t -> bool

val signature : t -> string
(** Canonical one-line description (["n=4;leader=0;0>1,1>2,..."]);
    equal graphs have equal signatures. *)
