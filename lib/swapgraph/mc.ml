(* Monte-Carlo success-rate estimation for a swap graph under a
   per-leg rational policy, parallelised on Numerics.Pool with
   bit-identical results at any jobs count.

   A trial walks the decision chain the game reduction solves: each
   non-leader party samples its deciding leg's price at its lock time
   and applies [lock_ok]; if every level locks, the leader samples its
   incoming leg at the cascade start and applies [reveal_ok].  Leg
   prices are i.i.d. draws from [price_at] (one per decision, in
   canonical decision order), so a chunk's draws depend only on the
   chunk's own generator — [Rng.of_stream ~seed ~stream:chunk] — and
   the chunk decomposition depends only on [chunk_size] and [trials],
   never on the jobs count. *)

type policy = {
  price_at : Numerics.Rng.t -> t:float -> float;
  lock_ok : int -> t:float -> price:float -> bool;
  reveal_ok : t:float -> price:float -> bool;
}

type result = {
  trials : int;
  success : int;
  rate : float;
  aborted_lock : int array;
  aborted_reveal : int;
}

type chunk_acc = {
  mutable c_success : int;
  c_aborted : int array;
  mutable c_reveal : int;
}

let estimate ?(trials = 20_000) ?(seed = 0x40b) ?jobs ?(chunk_size = 1024) g
    (s : Timelock.schedule) policy =
  if trials < 1 then invalid_arg "Mc.estimate: trials must be >= 1";
  let n = Graph.n g in
  let leader = Graph.leader g in
  let order = Graph.decision_order g in
  let deciders =
    Array.of_list
      (List.filter (fun v -> v <> leader) (Array.to_list order))
  in
  let lock_at =
    Array.map
      (fun v -> s.Timelock.lock_time.(List.hd (Graph.out_arcs g v)))
      deciders
  in
  let reveal_t = s.Timelock.lock_phase_end in
  let parts =
    Numerics.Pool.map_chunks ?jobs ~chunk_size ~n:trials
      (fun ~chunk ~lo ~hi ->
        let rng = Numerics.Rng.of_stream ~seed ~stream:chunk () in
        let acc =
          { c_success = 0; c_aborted = Array.make n 0; c_reveal = 0 }
        in
        for _ = lo to hi - 1 do
          let rec levels i =
            if i >= Array.length deciders then true
            else begin
              let v = deciders.(i) in
              let t = lock_at.(i) in
              let price = policy.price_at rng ~t in
              if policy.lock_ok v ~t ~price then levels (i + 1)
              else begin
                acc.c_aborted.(v) <- acc.c_aborted.(v) + 1;
                false
              end
            end
          in
          if levels 0 then begin
            let price = policy.price_at rng ~t:reveal_t in
            if policy.reveal_ok ~t:reveal_t ~price then
              acc.c_success <- acc.c_success + 1
            else acc.c_reveal <- acc.c_reveal + 1
          end
        done;
        acc)
  in
  let aborted_lock = Array.make n 0 in
  let success = ref 0 and reveal = ref 0 in
  Array.iter
    (fun acc ->
      success := !success + acc.c_success;
      reveal := !reveal + acc.c_reveal;
      Array.iteri
        (fun v c -> aborted_lock.(v) <- aborted_lock.(v) + c)
        acc.c_aborted)
    parts;
  {
    trials;
    success = !success;
    rate = float_of_int !success /. float_of_int trials;
    aborted_lock;
    aborted_reveal = !reveal;
  }
