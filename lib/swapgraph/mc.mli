(** Monte-Carlo success-rate estimation for a swap graph under a
    per-leg rational policy, parallelised on [Numerics.Pool].

    Bit-identical at any jobs count: trials are covered by fixed-size
    chunks, each chunk draws from its own
    [Rng.of_stream ~seed ~stream:chunk] generator, and the chunk
    decomposition never depends on the jobs count. *)

type policy = {
  price_at : Numerics.Rng.t -> t:float -> float;
      (** I.i.d. leg-price sample at decision time [t]. *)
  lock_ok : int -> t:float -> price:float -> bool;
      (** Non-leader party's lock rule at its level. *)
  reveal_ok : t:float -> price:float -> bool;
      (** Leader's reveal rule at the cascade start. *)
}

type result = {
  trials : int;
  success : int;
  rate : float;
  aborted_lock : int array;  (** Per vertex: aborts at its lock node. *)
  aborted_reveal : int;  (** Leader withheld at the reveal node. *)
}

val estimate :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  ?chunk_size:int ->
  Graph.t ->
  Timelock.schedule ->
  policy ->
  result
(** Defaults: 20000 trials, seed [0x40b], the pool's jobs setting,
    chunk size 1024.  @raise Invalid_argument on [trials < 1]. *)
