(* Multi-hop route search over a token universe.

   The universe is a directed graph of tradable pairs, each edge
   carrying the success rate and exchange rate of its best 2-party
   swap.  A route's success rate is the product of its legs' (legs
   fail independently), so "best" maximises that product under a hop
   bound — a longest-reliability path, found by dynamic programming
   over hop counts with a total deterministic tie order (higher SR,
   then fewer hops, then lexicographic token path), which keeps the
   served answer a pure function of (universe, query). *)

type edge = { src : string; dst : string; sr : float; rate : float }

type t = { tokens : string array; edges : edge array }

let compare_edge a b =
  match compare a.src b.src with 0 -> compare a.dst b.dst | c -> c

let make edges =
  let bad = ref None in
  List.iter
    (fun e ->
      let fail msg = if !bad = None then bad := Some msg in
      if e.src = "" || e.dst = "" then fail "router: empty token name"
      else if e.src = e.dst then
        fail (Printf.sprintf "router: self-edge on %S" e.src)
      else if not (Float.is_finite e.sr && e.sr >= 0. && e.sr <= 1.) then
        fail (Printf.sprintf "router: %s->%s: sr outside [0,1]" e.src e.dst)
      else if not (Float.is_finite e.rate && e.rate > 0.) then
        fail (Printf.sprintf "router: %s->%s: rate must be > 0" e.src e.dst))
    edges;
  match !bad with
  | Some msg -> Error msg
  | None ->
    let arr = Array.of_list edges in
    Array.sort compare_edge arr;
    let dup = ref None in
    Array.iteri
      (fun i e ->
        if i > 0 && compare_edge arr.(i - 1) e = 0 then dup := Some e)
      arr;
    (match !dup with
    | Some e ->
      Error (Printf.sprintf "router: duplicate pair %s->%s" e.src e.dst)
    | None ->
      let seen = Hashtbl.create 16 in
      let toks = ref [] in
      Array.iter
        (fun e ->
          List.iter
            (fun tok ->
              if not (Hashtbl.mem seen tok) then begin
                Hashtbl.replace seen tok ();
                toks := tok :: !toks
              end)
            [ e.src; e.dst ])
        arr;
      let tokens = Array.of_list (List.sort compare !toks) in
      Ok { tokens; edges = arr })

let make_exn edges =
  match make edges with
  | Ok t -> t
  | Error msg -> invalid_arg ("Swapgraph.Router.make: " ^ msg)

let tokens t = Array.to_list t.tokens
let edges t = Array.to_list t.edges
let mem t tok = Array.exists (fun x -> x = tok) t.tokens

type path = { hops : string list; sr : float; rate : float }

type error = Unknown_token of string | No_route

(* [a] strictly better than [b]: higher SR; ties to fewer hops, then
   the lexicographically smaller token path. *)
let better a b =
  a.sr > b.sr
  || (a.sr = b.sr
     && (List.length a.hops < List.length b.hops
        || (List.length a.hops = List.length b.hops && a.hops < b.hops)))

let best t ~from_tok ~to_tok ~max_hops =
  if not (mem t from_tok) then Error (Unknown_token from_tok)
  else if not (mem t to_tok) then Error (Unknown_token to_tok)
  else begin
    (* DP over hop counts: [best_to.(k)] = best route from [from_tok]
       to token [k] found so far.  Paths are kept reversed while
       relaxing and flipped once at the end. *)
    let nt = Array.length t.tokens in
    let index tok =
      let rec go i = if t.tokens.(i) = tok then i else go (i + 1) in
      go 0
    in
    let best_to = Array.make nt None in
    best_to.(index from_tok) <- Some { hops = [ from_tok ]; sr = 1.; rate = 1. };
    for _hop = 1 to max_hops do
      (* Relax against a frozen copy so each round adds exactly one
         hop — the hop bound stays exact. *)
      let frozen = Array.copy best_to in
      Array.iter
        (fun e ->
          match frozen.(index e.src) with
          | None -> ()
          | Some p ->
            let cand =
              {
                hops = e.dst :: p.hops;
                sr = p.sr *. e.sr;
                rate = p.rate *. e.rate;
              }
            in
            (* No revisits: a token already on the path never improves
               the product (sr <= 1), and cycles would inflate rates. *)
            if not (List.mem e.dst p.hops) then begin
              match best_to.(index e.dst) with
              | None -> best_to.(index e.dst) <- Some cand
              | Some cur ->
                if better cand cur then best_to.(index e.dst) <- Some cand
            end)
        t.edges
    done;
    match best_to.(index to_tok) with
    | Some p when List.length p.hops > 1 ->
      Ok { p with hops = List.rev p.hops }
    | Some _ | None -> Error No_route
  end
