(** Multi-hop route search over a token universe: a directed graph of
    tradable pairs, each edge carrying the success rate and exchange
    rate of its best 2-party swap.  The best route maximises the
    product of leg success rates under a hop bound, with a total
    deterministic tie order (higher SR, then fewer hops, then
    lexicographic token path) — the served answer is a pure function
    of (universe, query). *)

type edge = { src : string; dst : string; sr : float; rate : float }

type t

val make : edge list -> (t, string) result
(** Rejects empty token names, self-edges, duplicate pairs, SR outside
    [0, 1] and non-positive rates.  Edges are canonically sorted. *)

val make_exn : edge list -> t
(** @raise Invalid_argument where {!make} returns [Error]. *)

val tokens : t -> string list
(** Sorted, deduplicated. *)

val edges : t -> edge list
val mem : t -> string -> bool

type path = {
  hops : string list;  (** Tokens visited, endpoints included. *)
  sr : float;  (** Product of leg success rates. *)
  rate : float;  (** Product of leg exchange rates. *)
}

type error = Unknown_token of string | No_route

val best :
  t -> from_tok:string -> to_tok:string -> max_hops:int -> (path, error) result
(** Best simple path with at most [max_hops] legs; [No_route] also
    covers [from_tok = to_tok]. *)
