(* Pool-parallel sweep over generated topologies: for each (family,
   size, slack, seed) spec, build the graph, assign Herlihy timelocks,
   solve the graph game, and Monte-Carlo the success rate.

   Parallelism is across rows (one pool task per spec, order
   preserved); the per-row Monte Carlo runs with [jobs:1] and a seed
   derived only from the base seed and the row index, so the full
   sweep is bit-identical at any jobs count. *)

type spec = {
  family : Topology.family;
  size : int;
  slack : float;
  topo_seed : int;
}

type row = {
  spec : spec;
  graph : Graph.t;
  schedule : Timelock.schedule;
  sr : float;
  max_exposure_hours : float;
  equilibrium_success : bool;
  deviator : int option;
}

let run ?jobs ?(trials = 5_000) ?(seed = 0x9af) ~tau ~eps ~policy ~payoffs
    specs =
  let indexed = Array.of_list (List.mapi (fun i s -> (i, s)) specs) in
  let rows =
    Numerics.Pool.map_array ?jobs
      (fun (idx, spec) ->
        let graph =
          Topology.generate spec.family ~n:spec.size ~seed:spec.topo_seed
        in
        let schedule = Timelock.assign ~slack:spec.slack graph ~tau ~eps in
        (match Timelock.validate graph schedule with
        | Ok () -> ()
        | Error msg -> invalid_arg ("Sweep.run: bad schedule: " ^ msg));
        let analysis = Game.analyse graph (payoffs graph schedule) in
        let mc =
          Mc.estimate ~trials
            ~seed:(seed + (1000003 * idx))
            ~jobs:1 graph schedule (policy graph schedule)
        in
        let exposure = Timelock.exposure_hours graph schedule in
        {
          spec;
          graph;
          schedule;
          sr = mc.Mc.rate;
          max_exposure_hours = Array.fold_left max 0. exposure;
          equilibrium_success = analysis.Game.success;
          deviator = analysis.Game.deviator;
        })
      indexed
  in
  Array.to_list rows
