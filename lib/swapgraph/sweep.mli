(** Pool-parallel sweep over generated topologies: per spec, build the
    graph, assign Herlihy timelocks, solve the graph game and
    Monte-Carlo the success rate.  Parallelism is across rows with
    per-row seeds derived from the base seed and row index only, so
    results are bit-identical at any jobs count. *)

type spec = {
  family : Topology.family;
  size : int;
  slack : float;  (** Extra stagger per claim level (hours). *)
  topo_seed : int;  (** Generator seed (matters for {!Topology.Random}). *)
}

type row = {
  spec : spec;
  graph : Graph.t;
  schedule : Timelock.schedule;
  sr : float;  (** Monte-Carlo success rate under the policy. *)
  max_exposure_hours : float;
      (** Worst per-vertex griefing exposure ({!Timelock.exposure_hours}). *)
  equilibrium_success : bool;
      (** Conforming play subgame perfect in the graph game. *)
  deviator : int option;
}

val run :
  ?jobs:int ->
  ?trials:int ->
  ?seed:int ->
  tau:float ->
  eps:float ->
  policy:(Graph.t -> Timelock.schedule -> Mc.policy) ->
  payoffs:(Graph.t -> Timelock.schedule -> Game.payoffs) ->
  spec list ->
  row list
(** Defaults: 5000 trials per row, seed [0x9af], the pool's jobs
    setting.  Rows come back in spec order. *)
