(* Herlihy's timelock assignment, generalised from the cycle in
   Swap.Multihop to arbitrary well-formed swap digraphs.

   With [d(v)] the leader distance of vertex [v], [D] the maximum
   distance, [tau] the per-chain confirmation time and
   [spacing = eps + slack] the per-level claim stagger:

     lock_time(a)   = d(src a) * tau          (locks confirm level by
                                               level away from the leader)
     lock_phase_end = (D + 1) * tau           (the deepest lock confirmed)
     claim_time(a)  = lock_phase_end + (D - d(src a)) * spacing
     expiry(a)      = claim_time(a) + tau     (tight: the claim confirms
                                               exactly at the expiry)

   Claims therefore start on the arcs feeding the leader (largest
   [d(src)]) and cascade outward; deadlines strictly grow toward the
   leader's own outgoing arcs, which is exactly the staggering the
   2-party analysis needs — a party only ever claims an arc whose
   expiry is later than the arc it just saw claimed.  On an n-cycle
   this reproduces Swap.Multihop's schedule term for term. *)

type schedule = {
  tau : float;
  eps : float;
  slack : float;
  lock_time : float array;
  claim_time : float array;
  expiry : float array;
  lock_phase_end : float;
  horizon : float;
}

let assign ?(slack = 0.) g ~tau ~eps =
  if not (tau > 0.) then invalid_arg "Timelock.assign: tau must be > 0";
  if eps < 0. then invalid_arg "Timelock.assign: eps must be >= 0";
  if slack < 0. then invalid_arg "Timelock.assign: slack must be >= 0";
  let d_max = Graph.max_depth g in
  let lock_phase_end = float_of_int (d_max + 1) *. tau in
  let spacing = eps +. slack in
  let arcs = Graph.arcs g in
  let lock_time =
    Array.map
      (fun a -> float_of_int (Graph.depth g a.Graph.src) *. tau)
      arcs
  in
  let claim_time =
    Array.map
      (fun a ->
        lock_phase_end
        +. (float_of_int (d_max - Graph.depth g a.Graph.src) *. spacing))
      arcs
  in
  let expiry = Array.map (fun t -> t +. tau) claim_time in
  let latest = Array.fold_left max 0. expiry in
  {
    tau;
    eps;
    slack;
    lock_time;
    claim_time;
    expiry;
    lock_phase_end;
    horizon = latest +. (2. *. tau) +. 1.;
  }

(* The invariants every valid assignment must satisfy ("Herlihy
   order"): locks confirm before the cascade starts, each claim window
   is at least one confirmation long, and expiries are strictly
   decreasing as the sender's leader distance grows — so parties that
   learn the secret later still meet earlier deadlines upstream. *)
let validate g s =
  let arcs = Graph.arcs g in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  Array.iteri
    (fun i a ->
      let d = Graph.depth g a.Graph.src in
      if s.lock_time.(i) <> float_of_int d *. s.tau then
        fail "arc %d: lock time off the level grid" i;
      if s.claim_time.(i) < s.lock_phase_end then
        fail "arc %d: claim before the lock phase ended" i;
      if s.expiry.(i) < s.claim_time.(i) +. s.tau then
        fail "arc %d: claim window shorter than one confirmation" i)
    arcs;
  (* Across consecutive populated depth levels: min expiry at the
     shallower level must strictly exceed max expiry at the deeper. *)
  let d_max = Graph.max_depth g in
  let min_at = Array.make (d_max + 1) infinity in
  let max_at = Array.make (d_max + 1) neg_infinity in
  Array.iteri
    (fun i a ->
      let d = Graph.depth g a.Graph.src in
      if s.expiry.(i) < min_at.(d) then min_at.(d) <- s.expiry.(i);
      if s.expiry.(i) > max_at.(d) then max_at.(d) <- s.expiry.(i))
    arcs;
  let last_populated = ref None in
  for d = 0 to d_max do
    if min_at.(d) < infinity then begin
      (match !last_populated with
      | Some d' when not (min_at.(d') > max_at.(d)) ->
        fail "expiries must strictly decrease from depth %d to %d" d' d
      | _ -> ());
      last_populated := Some d
    end
  done;
  match !err with None -> Ok () | Some m -> Error m

(* Worst-case griefing exposure: the hours each party's outgoing
   collateral can be held hostage by counterparties who lock but never
   claim — from its lock until the refund at expiry, summed over its
   outgoing arcs. *)
let exposure_hours g s =
  let out = Array.make (Graph.n g) 0. in
  Array.iteri
    (fun i a ->
      out.(a.Graph.src) <-
        out.(a.Graph.src) +. (s.expiry.(i) -. s.lock_time.(i)))
    (Graph.arcs g);
  out
