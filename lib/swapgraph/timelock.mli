(** Herlihy's timelock assignment for swap digraphs, generalising the
    cycle schedule in [Swap.Multihop]: locks confirm level by level
    away from the leader, claims cascade back from the leader with a
    per-level stagger of [eps + slack], and every expiry sits exactly
    one confirmation after its claim (tight schedule).  On an n-cycle
    this reproduces [Swap.Multihop.expiry_schedule] term for term. *)

type schedule = {
  tau : float;  (** Per-chain confirmation time (hours). *)
  eps : float;  (** Mempool/stagger delay per claim level. *)
  slack : float;  (** Extra safety margin added to each level's stagger. *)
  lock_time : float array;  (** Per arc (canonical order): lock submit time. *)
  claim_time : float array;  (** Per arc: happy-path claim submit time. *)
  expiry : float array;  (** Per arc: refund deadline, [claim_time + tau]. *)
  lock_phase_end : float;  (** All locks confirmed: [(max_depth + 1) tau]. *)
  horizon : float;  (** Safe simulation end (every refund settled). *)
}

val assign : ?slack:float -> Graph.t -> tau:float -> eps:float -> schedule
(** @raise Invalid_argument on [tau <= 0], [eps < 0] or [slack < 0]. *)

val validate : Graph.t -> schedule -> (unit, string) result
(** Checks the Herlihy-order invariants: locks on the level grid,
    claims after the lock phase, claim windows at least one
    confirmation long, and expiries strictly decreasing as the
    sender's leader distance grows. *)

val exposure_hours : Graph.t -> schedule -> float array
(** Per vertex: hours its outgoing collateral is at risk if
    counterparties grief (lock-until-expiry, summed over out-arcs). *)
