(* Topology-family generators for sweep studies.  All deterministic:
   the structured families are pure functions of the size, and the
   random family draws every bit from [Rng.of_stream ~seed ~stream:0],
   so a (family, size, seed) triple names one graph forever. *)

type family = Cycle | Star | Bridge | Random

let family_to_string = function
  | Cycle -> "cycle"
  | Star -> "star"
  | Bridge -> "bridge"
  | Random -> "random"

let family_of_string = function
  | "cycle" -> Some Cycle
  | "star" -> Some Star
  | "bridge" -> Some Bridge
  | "random" -> Some Random
  | _ -> None

let all_families = [ Cycle; Star; Bridge; Random ]

let cycle n =
  Graph.make_exn ~n (List.init n (fun i -> (i, (i + 1) mod n)))

(* Hub-and-spoke: the leader trades with every other party directly —
   out and back — so every spoke sits at depth 1. *)
let star n =
  if n < 2 then invalid_arg "Topology.star: need at least 2 parties";
  Graph.make_exn ~n
    (List.concat_map (fun k -> [ (0, k); (k, 0) ]) (List.init (n - 1) (fun i -> i + 1)))

(* Two cycles sharing the leader: the leader bridges two otherwise
   disjoint trading rings, giving it two outgoing and two incoming
   legs and asymmetric depths. *)
let bridge n =
  if n < 5 then invalid_arg "Topology.bridge: need at least 5 parties";
  let m = n / 2 in
  (* Left ring: 0 -> 1 -> ... -> m -> 0. *)
  let left = (m, 0) :: List.init m (fun i -> (i, i + 1)) in
  (* Right ring: 0 -> m+1 -> ... -> n-1 -> 0. *)
  let right =
    (0, m + 1)
    :: (n - 1, 0)
    :: List.init (n - m - 2) (fun i -> (m + 1 + i, m + 2 + i))
  in
  Graph.make_exn ~n (left @ right)

(* A random Hamiltonian cycle (strong connectivity for free) plus
   [extra] additional distinct arcs.  The attempt budget bounds the
   rejection loop deterministically when the graph saturates. *)
let random_connected ~seed ~n ?(extra = n) () =
  if n < 2 then invalid_arg "Topology.random_connected: need >= 2 parties";
  let rng = Numerics.Rng.of_stream ~seed ~stream:0 () in
  let rest = Array.init (n - 1) (fun i -> i + 1) in
  Numerics.Rng.shuffle rng rest;
  let ring = Array.append [| 0 |] rest in
  let present = Hashtbl.create (4 * n) in
  let base =
    List.init n (fun i ->
        let a = (ring.(i), ring.((i + 1) mod n)) in
        Hashtbl.replace present a ();
        a)
  in
  let added = ref [] in
  let budget = ref ((10 * extra) + 50) in
  let remaining = ref extra in
  while !remaining > 0 && !budget > 0 do
    decr budget;
    let src = Numerics.Rng.int_below rng n in
    let dst = Numerics.Rng.int_below rng n in
    if src <> dst && not (Hashtbl.mem present (src, dst)) then begin
      Hashtbl.replace present (src, dst) ();
      added := (src, dst) :: !added;
      decr remaining
    end
  done;
  Graph.make_exn ~n (base @ !added)

let generate family ~n ~seed =
  match family with
  | Cycle -> cycle n
  | Star -> star n
  | Bridge -> bridge n
  | Random -> random_connected ~seed ~n ()
