(** Topology-family generators for sweep studies.  Deterministic: the
    structured families are pure functions of the size, and the random
    family draws every bit from [Rng.of_stream ~seed ~stream:0], so a
    (family, size, seed) triple names one graph forever. *)

type family = Cycle | Star | Bridge | Random

val family_to_string : family -> string
val family_of_string : string -> family option
val all_families : family list

val cycle : int -> Graph.t
(** [i -> i+1 mod n]; the Herlihy/Multihop ring.  [n >= 2]. *)

val star : int -> Graph.t
(** Hub-and-spoke: the leader trades out and back with every other
    party; every spoke at depth 1.  [n >= 2]. *)

val bridge : int -> Graph.t
(** Two cycles sharing the leader, which bridges two otherwise
    disjoint trading rings.  [n >= 5]. *)

val random_connected : seed:int -> n:int -> ?extra:int -> unit -> Graph.t
(** A seeded random Hamiltonian cycle (strong connectivity for free)
    plus up to [extra] (default [n]) additional distinct arcs. *)

val generate : family -> n:int -> seed:int -> Graph.t
(** Dispatch; [seed] only matters for {!Random}. *)
