(* Tests for the blockchain simulator: SHA-256, heaps, secrets,
   ledgers, HTLC semantics, chain timing, mempool visibility, the
   discrete-event loop and the collateral Oracle. *)

open Chainsim

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* --- SHA-256 (FIPS 180-4 test vectors) --------------------------------- *)

let test_sha256_vectors () =
  let cases =
    [
      ( "",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
      ( "abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "The quick brown fox jumps over the lazy dog",
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
    ]
  in
  List.iter
    (fun (msg, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256(%S)" msg)
        expected (Sha256.hex_digest msg))
    cases

let test_sha256_long_input () =
  (* One million 'a' characters — the classic long vector. *)
  let msg = String.make 1_000_000 'a' in
  Alcotest.(check string)
    "sha256(a^1e6)"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest msg)

let test_sha256_block_boundaries () =
  (* Inputs spanning the 55/56/64-byte padding boundaries must differ
     and be deterministic. *)
  let digests =
    List.map (fun n -> Sha256.hex_digest (String.make n 'x')) [ 54; 55; 56; 63; 64; 65 ]
  in
  let uniq = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length uniq)

(* --- Heap ------------------------------------------------------------------ *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 1; 3; 4; 5; 9 ]
    (Heap.to_sorted_list h);
  Alcotest.(check int) "length unchanged" 7 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 0) (Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 0) (Heap.pop h);
  Alcotest.(check int) "length after pop" 6 (Heap.length h)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Alcotest.(check (list int)) "drain empty" [] (Heap.to_sorted_list h)

(* --- Secrets ----------------------------------------------------------------- *)

let test_secret_roundtrip () =
  let rng = Numerics.Rng.create ~seed:3 () in
  let s = Secret.generate rng in
  Alcotest.(check bool) "verify own preimage" true
    (Secret.verify ~hash:s.Secret.hash ~preimage:s.Secret.preimage);
  Alcotest.(check bool) "reject other preimage" false
    (Secret.verify ~hash:s.Secret.hash ~preimage:"wrong");
  Alcotest.(check int) "hex length" 64 (String.length (Secret.hash_hex s))

let test_secret_distinct () =
  let rng = Numerics.Rng.create ~seed:3 () in
  let a = Secret.generate rng and b = Secret.generate rng in
  Alcotest.(check bool) "fresh secrets differ" false
    (String.equal a.Secret.preimage b.Secret.preimage)

(* --- Ledger --------------------------------------------------------------------- *)

let test_ledger_transfer () =
  let l = Ledger.create () in
  Ledger.mint l "a" 10.;
  Ledger.transfer l ~from_:"a" ~to_:"b" ~amount:4.;
  check_float "a" 6. (Ledger.balance l "a");
  check_float "b" 4. (Ledger.balance l "b");
  check_float "supply" 10. (Ledger.total_supply l)

let test_ledger_insufficient () =
  let l = Ledger.create () in
  Ledger.mint l "a" 1.;
  (try
     Ledger.transfer l ~from_:"a" ~to_:"b" ~amount:2.;
     Alcotest.fail "expected Insufficient_funds"
   with Ledger.Insufficient_funds { have; need; _ } ->
     check_float "have" 1. have;
     check_float "need" 2. need);
  check_float "unchanged" 1. (Ledger.balance l "a")

(* --- HTLC state machine ----------------------------------------------------------- *)

let make_htlc () =
  let s = Secret.of_preimage "p" in
  ( s,
    Htlc.create ~contract_id:"c" ~sender:"a" ~recipient:"b" ~amount:1.
      ~hash:s.Secret.hash ~expiry:10. ~created_at:0. )

let test_htlc_claim_ok () =
  let s, h = make_htlc () in
  match Htlc.try_claim h ~preimage:s.Secret.preimage ~at:5. with
  | Ok h' -> Alcotest.(check bool) "not locked" false (Htlc.is_locked h')
  | Error e -> Alcotest.failf "claim failed: %s" e

let test_htlc_claim_late () =
  let s, h = make_htlc () in
  match Htlc.try_claim h ~preimage:s.Secret.preimage ~at:10.5 with
  | Error "time lock expired" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "late claim must fail"

let test_htlc_claim_bad_preimage () =
  let _, h = make_htlc () in
  match Htlc.try_claim h ~preimage:"nope" ~at:5. with
  | Error "preimage does not match hashlock" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "bad preimage must fail"

let test_htlc_refund_rules () =
  let _, h = make_htlc () in
  (match Htlc.try_refund h ~at:5. with
  | Error "time lock not yet expired" -> ()
  | _ -> Alcotest.fail "early refund must fail");
  match Htlc.try_refund h ~at:10. with
  | Ok h' -> (
    match Htlc.try_refund h' ~at:11. with
    | Error "already refunded" -> ()
    | _ -> Alcotest.fail "double refund must fail")
  | Error e -> Alcotest.failf "refund at expiry failed: %s" e

let test_htlc_no_double_claim () =
  let s, h = make_htlc () in
  match Htlc.try_claim h ~preimage:s.Secret.preimage ~at:5. with
  | Ok h' -> (
    match Htlc.try_claim h' ~preimage:s.Secret.preimage ~at:6. with
    | Error "already claimed" -> ()
    | _ -> Alcotest.fail "double claim must fail")
  | Error e -> Alcotest.failf "claim failed: %s" e

(* --- Chain ----------------------------------------------------------------------------- *)

let fresh_chain () =
  Chain.create ~name:"test" ~token:"TKN" ~tau:2. ~mempool_delay:0.5 ()

let test_chain_confirmation_delay () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  ignore (Chain.submit c ~at:1. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 3. }));
  ignore (Chain.advance c ~until:2.9);
  check_float "not yet confirmed" 0. (Chain.balance c ~account:"b");
  ignore (Chain.advance c ~until:3.0);
  check_float "confirmed at submit+tau" 3. (Chain.balance c ~account:"b")

let test_chain_event_order_fifo () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:1.;
  (* Two conflicting transfers submitted at the same instant: only the
     first can succeed. *)
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. }));
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "c"; amount = 1. }));
  let receipts = Chain.advance c ~until:5. in
  (match receipts with
  | [ r1; r2 ] ->
    Alcotest.(check bool) "first ok" true (Result.is_ok r1.Chain.result);
    Alcotest.(check bool) "second fails" true (Result.is_error r2.Chain.result)
  | _ -> Alcotest.fail "expected two receipts");
  check_float "b got it" 1. (Chain.balance c ~account:"b")

let test_chain_htlc_lifecycle () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "swap" in
  ignore
    (Chain.submit c ~at:0.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 4.;
            hash = s.Secret.hash; expiry = 10. }));
  ignore (Chain.advance c ~until:2.);
  check_float "escrowed" 1. (Chain.balance c ~account:"a");
  check_float "escrow account holds" 4.
    (Chain.balance c ~account:(Chain.escrow_account ~contract_id:"h"));
  ignore
    (Chain.submit c ~at:3.
       (Tx.Htlc_claim { contract_id = "h"; preimage = s.Secret.preimage }));
  ignore (Chain.advance c ~until:5.);
  check_float "claimed" 4. (Chain.balance c ~account:"b");
  check_float "supply conserved" 5. (Chain.total_supply c)

let test_chain_auto_refund_timing () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "swap" in
  ignore
    (Chain.submit c ~at:0.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 4.;
            hash = s.Secret.hash; expiry = 6. }));
  (* Funds return at expiry + tau = 8 (Eqs. 10-11). *)
  ignore (Chain.advance c ~until:7.9);
  check_float "not yet refunded" 1. (Chain.balance c ~account:"a");
  ignore (Chain.advance c ~until:8.);
  check_float "refunded at expiry+tau" 5. (Chain.balance c ~account:"a")

let test_chain_claim_beats_expiry_boundary () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "swap" in
  ignore
    (Chain.submit c ~at:0.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 4.;
            hash = s.Secret.hash; expiry = 6. }));
  (* Claim submitted at 4 confirms exactly at expiry: still valid. *)
  ignore
    (Chain.submit c ~at:4.
       (Tx.Htlc_claim { contract_id = "h"; preimage = s.Secret.preimage }));
  ignore (Chain.advance c ~until:10.);
  check_float "claim at boundary succeeds" 4. (Chain.balance c ~account:"b")

let test_chain_mempool_visibility () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "sniff" in
  ignore
    (Chain.submit c ~at:0.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 1.;
            hash = s.Secret.hash; expiry = 10. }));
  ignore
    (Chain.submit c ~at:3.
       (Tx.Htlc_claim { contract_id = "h"; preimage = s.Secret.preimage }));
  Alcotest.(check (option string))
    "invisible before delay" None
    (Chain.observed_preimage c ~at:3.4 ~hash:s.Secret.hash);
  Alcotest.(check (option string))
    "visible after delay" (Some s.Secret.preimage)
    (Chain.observed_preimage c ~at:3.5 ~hash:s.Secret.hash)

let test_chain_rejects_past_submission () =
  let c = fresh_chain () in
  ignore (Chain.advance c ~until:5.);
  match
    Chain.submit c ~at:1. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 0. })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of past submission"

let test_chain_duplicate_contract () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "x" in
  let lock expiry =
    Tx.Htlc_lock
      { contract_id = "dup"; sender = "a"; recipient = "b"; amount = 1.;
        hash = s.Secret.hash; expiry }
  in
  ignore (Chain.submit c ~at:0. (lock 10.));
  ignore (Chain.submit c ~at:0.5 (lock 12.));
  let receipts = Chain.advance c ~until:3. in
  match receipts with
  | [ r1; r2 ] ->
    Alcotest.(check bool) "first ok" true (Result.is_ok r1.Chain.result);
    Alcotest.(check bool) "duplicate rejected" true
      (Result.is_error r2.Chain.result)
  | _ -> Alcotest.fail "expected two receipts"

let test_chain_mempool_delay_constraint () =
  Alcotest.(check bool) "eps < tau enforced" true
    (match Chain.create ~name:"x" ~token:"t" ~tau:1. ~mempool_delay:1. () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Transaction fees --------------------------------------------------------- *)

let test_fees_on_transfer () =
  let c = fresh_chain () in
  Chain.set_fee_per_tx c 0.1;
  Chain.mint c ~account:"a" ~amount:5.;
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 3. }));
  ignore (Chain.advance c ~until:5.);
  check_float "sender pays amount + fee" 1.9 (Chain.balance c ~account:"a");
  check_float "recipient gets full amount" 3. (Chain.balance c ~account:"b");
  check_float "miner collects" 0.1 (Chain.balance c ~account:Chain.miner_account);
  check_float "conservation" 5. (Chain.total_supply c)

let test_fees_on_htlc_cycle () =
  let c = fresh_chain () in
  Chain.set_fee_per_tx c 0.05;
  Chain.mint c ~account:"a" ~amount:5.;
  Chain.mint c ~account:"b" ~amount:1.;
  let s = Secret.of_preimage "fee" in
  ignore
    (Chain.submit c ~at:0.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 4.;
            hash = s.Secret.hash; expiry = 10. }));
  ignore
    (Chain.submit c ~at:3.
       (Tx.Htlc_claim { contract_id = "h"; preimage = s.Secret.preimage }));
  ignore (Chain.advance c ~until:8.);
  (* Lock fee paid by the sender, claim fee by the recipient. *)
  check_float "sender" 0.95 (Chain.balance c ~account:"a");
  check_float "recipient" 4.95 (Chain.balance c ~account:"b");
  check_float "miner" 0.1 (Chain.balance c ~account:Chain.miner_account)

let test_fees_forgiven_when_broke () =
  let c = fresh_chain () in
  Chain.set_fee_per_tx c 1.;
  Chain.mint c ~account:"a" ~amount:2.;
  (* Transfer everything: the fee exceeds the remaining balance and is
     partially forgiven rather than failing the transfer. *)
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 2. }));
  let receipts = Chain.advance c ~until:5. in
  Alcotest.(check bool) "transfer still succeeds" true
    (Result.is_ok (List.hd receipts).Chain.result);
  check_float "recipient whole" 2. (Chain.balance c ~account:"b");
  check_float "no fee collectable" 0.
    (Chain.balance c ~account:Chain.miner_account)

let test_fees_zero_by_default () =
  let c = fresh_chain () in
  check_float "assumption 2 default" 0. (Chain.fee_per_tx c);
  match Chain.set_fee_per_tx c (-1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative fee must be rejected"

(* --- Fault injection ---------------------------------------------------------- *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let faulty_chain ?(seed = 7) faults =
  Chain.create ~faults ~fault_seed:seed ~name:"test" ~token:"TKN" ~tau:2.
    ~mempool_delay:0.5 ()

let test_fault_drop_keeps_mempool_visibility () =
  let c = faulty_chain (Faults.create ~drop_prob:1. ()) in
  Chain.mint c ~account:"a" ~amount:5.;
  let s = Secret.of_preimage "leak" in
  let tx =
    Chain.submit c ~at:0.
      (Tx.Htlc_claim { contract_id = "h"; preimage = s.Secret.preimage })
  in
  ignore (Chain.advance c ~until:50.);
  Alcotest.(check bool) "dropped tx never gets a receipt" true
    (Chain.tx_receipt c ~tx_id:tx = None);
  (* The dangerous asymmetry: censorship stops the state change but not
     the information leak. *)
  Alcotest.(check (option string))
    "preimage still leaks from the mempool" (Some s.Secret.preimage)
    (Chain.observed_preimage c ~at:1. ~hash:s.Secret.hash);
  Alcotest.(check int) "drop counted" 1 (Chain.fault_stats c).Chain.dropped;
  check_float "no state change" 5. (Chain.balance c ~account:"a")

let test_fault_delay_bounded_and_deterministic () =
  let faults =
    Faults.create
      ~delay:(Faults.Shifted_exponential { mean = 1.; cap = 3. })
      ()
  in
  let confirm_time () =
    let c = faulty_chain ~seed:11 faults in
    Chain.mint c ~account:"a" ~amount:5.;
    let tx =
      Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. })
    in
    ignore (Chain.advance c ~until:20.);
    match Chain.tx_receipt c ~tx_id:tx with
    | Some r -> r.Chain.time
    | None -> Alcotest.fail "delayed transfer must still confirm"
  in
  let t1 = confirm_time () in
  Alcotest.(check bool) "within [tau, tau + cap]" true (t1 >= 2. && t1 <= 5.);
  check_float "same seed, same lateness" t1 (confirm_time ())

let test_fault_reorg_adds_one_tau () =
  let c = faulty_chain (Faults.create ~reorg_prob:1. ()) in
  Chain.mint c ~account:"a" ~amount:5.;
  let tx =
    Chain.submit c ~at:1. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. })
  in
  ignore (Chain.advance c ~until:20.);
  (match Chain.tx_receipt c ~tx_id:tx with
  | Some r -> check_float "orphaned then re-mined one block later" 5. r.Chain.time
  | None -> Alcotest.fail "reorged transfer must still confirm");
  Alcotest.(check int) "reorg counted" 1 (Chain.fault_stats c).Chain.reorged

let test_fault_halt_defers_confirmation_and_refund () =
  let c = faulty_chain (Faults.create ~halts:[ (1., 5.); (9., 12.) ] ()) in
  Chain.mint c ~account:"a" ~amount:5.;
  let tx =
    Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. })
  in
  ignore (Chain.advance c ~until:4.9);
  check_float "confirmation held during the halt" 0.
    (Chain.balance c ~account:"b");
  ignore (Chain.advance c ~until:5.);
  check_float "applied at halt end" 1. (Chain.balance c ~account:"b");
  (match Chain.tx_receipt c ~tx_id:tx with
  | Some r -> check_float "receipt shows deferred time" 5. r.Chain.time
  | None -> Alcotest.fail "transfer must confirm");
  (* Auto-refund due at expiry + tau = 9.5 lands in the second window. *)
  let s = Secret.of_preimage "halted" in
  ignore
    (Chain.submit c ~at:5.
       (Tx.Htlc_lock
          { contract_id = "h"; sender = "a"; recipient = "b"; amount = 2.;
            hash = s.Secret.hash; expiry = 7.5 }));
  ignore (Chain.advance c ~until:11.9);
  check_float "refund deferred past the halt" 2.
    (Chain.balance c ~account:"a");
  ignore (Chain.advance c ~until:12.);
  check_float "refunded at halt end" 4. (Chain.balance c ~account:"a");
  Alcotest.(check int) "both deferrals counted" 2
    (Chain.fault_stats c).Chain.halted

let test_fault_seed_replay_identical () =
  let faults =
    Faults.create ~drop_prob:0.3 ~delay_prob:0.7
      ~delay:(Faults.Shifted_exponential { mean = 1.; cap = 4. })
      ~reorg_prob:0.2 ~halts:[ (3., 4.) ] ()
  in
  let play () =
    let c = faulty_chain ~seed:42 faults in
    Chain.mint c ~account:"a" ~amount:50.;
    for i = 0 to 19 do
      ignore
        (Chain.submit c ~at:(float_of_int i)
           (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. }))
    done;
    ignore (Chain.advance c ~until:100.);
    List.map
      (fun r -> (r.Chain.time, r.Chain.description, Result.is_ok r.Chain.result))
      (Chain.receipts c)
  in
  Alcotest.(check bool) "same (seed, schedule) replays the same trace" true
    (play () = play ())

let test_fee_forgiveness_recorded_in_receipt () =
  let c = fresh_chain () in
  Chain.set_fee_per_tx c 1.;
  Chain.mint c ~account:"a" ~amount:2.;
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 2. }));
  let receipts = Chain.advance c ~until:5. in
  Alcotest.(check bool) "receipt records the forgiven fee" true
    (contains_substring (List.hd receipts).Chain.description "[fee forgiven: 1]")

(* --- Escrow (AC3 witness contracts) ------------------------------------------ *)

let make_escrow () =
  Escrow.create ~contract_id:"e" ~owner:"a" ~counterparty:"b" ~amount:3.
    ~arbiter:"w" ~expiry:10. ~created_at:0.

let test_escrow_commit () =
  let e = make_escrow () in
  match Escrow.decide e ~by:"w" ~commit:true ~at:5. with
  | Ok e' -> (
    Alcotest.(check bool) "settled" false (Escrow.is_held e');
    match Escrow.decide e' ~by:"w" ~commit:false ~at:6. with
    | Error "already committed" -> ()
    | _ -> Alcotest.fail "double decision must fail")
  | Error e -> Alcotest.failf "commit failed: %s" e

let test_escrow_rejects_non_arbiter () =
  let e = make_escrow () in
  match Escrow.decide e ~by:"mallory" ~commit:true ~at:5. with
  | Error "not the arbiter" -> ()
  | _ -> Alcotest.fail "only the arbiter may decide"

let test_escrow_expiry_rules () =
  let e = make_escrow () in
  (match Escrow.decide e ~by:"w" ~commit:true ~at:10.5 with
  | Error "arbitration window expired" -> ()
  | _ -> Alcotest.fail "late verdicts must fail");
  (match Escrow.try_timeout e ~at:9. with
  | Error "not yet expired" -> ()
  | _ -> Alcotest.fail "early timeout must fail");
  match Escrow.try_timeout e ~at:10. with
  | Ok e' -> Alcotest.(check string) "aborted" "aborted@10"
      (Escrow.state_to_string e'.Escrow.state)
  | Error e -> Alcotest.failf "timeout failed: %s" e

let test_chain_escrow_commit_flow () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  ignore
    (Chain.submit c ~at:0.
       (Tx.Escrow_lock
          { contract_id = "e"; owner = "a"; counterparty = "b"; amount = 3.;
            arbiter = "w"; expiry = 10. }));
  ignore
    (Chain.submit c ~at:3.
       (Tx.Escrow_decide { contract_id = "e"; by = "w"; commit = true }));
  ignore (Chain.advance c ~until:6.);
  check_float "counterparty paid" 3. (Chain.balance c ~account:"b");
  check_float "owner keeps the rest" 2. (Chain.balance c ~account:"a");
  check_float "supply conserved" 5. (Chain.total_supply c)

let test_chain_escrow_timeout_refunds () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  ignore
    (Chain.submit c ~at:0.
       (Tx.Escrow_lock
          { contract_id = "e"; owner = "a"; counterparty = "b"; amount = 3.;
            arbiter = "w"; expiry = 6. }));
  (* Nobody decides: funds return at expiry + tau = 8. *)
  ignore (Chain.advance c ~until:7.9);
  check_float "still escrowed" 2. (Chain.balance c ~account:"a");
  ignore (Chain.advance c ~until:8.);
  check_float "refunded" 5. (Chain.balance c ~account:"a");
  check_float "counterparty unpaid" 0. (Chain.balance c ~account:"b")

let test_chain_escrow_fake_arbiter_rejected () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:5.;
  ignore
    (Chain.submit c ~at:0.
       (Tx.Escrow_lock
          { contract_id = "e"; owner = "a"; counterparty = "b"; amount = 3.;
            arbiter = "w"; expiry = 10. }));
  ignore
    (Chain.submit c ~at:3.
       (Tx.Escrow_decide { contract_id = "e"; by = "b"; commit = true }));
  let receipts = Chain.advance c ~until:6. in
  let decide_receipt = List.nth receipts 1 in
  Alcotest.(check bool) "fake verdict fails" true
    (Result.is_error decide_receipt.Chain.result);
  check_float "no payout" 0. (Chain.balance c ~account:"b")

(* --- Explorer ------------------------------------------------------------------ *)

let test_explorer_blocks_group_by_time () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:10.;
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "b"; amount = 1. }));
  ignore (Chain.submit c ~at:0. (Tx.Transfer { from_ = "a"; to_ = "c"; amount = 1. }));
  ignore (Chain.submit c ~at:1. (Tx.Transfer { from_ = "a"; to_ = "d"; amount = 1. }));
  ignore (Chain.advance c ~until:10.);
  let blocks = Explorer.blocks c in
  Alcotest.(check int) "two blocks" 2 (List.length blocks);
  let first = List.hd blocks in
  Alcotest.(check int) "two events in the first" 2
    (List.length first.Explorer.events);
  check_float "first confirms at tau" 2. first.Explorer.time

let test_explorer_balances_sorted_nonzero () =
  let c = fresh_chain () in
  Chain.mint c ~account:"whale" ~amount:100.;
  Chain.mint c ~account:"shrimp" ~amount:1.;
  Chain.mint c ~account:"empty" ~amount:0.;
  match Explorer.balances c with
  | [ (a, va); (b, vb) ] ->
    Alcotest.(check string) "largest first" "whale" a;
    check_float "whale balance" 100. va;
    Alcotest.(check string) "then shrimp" "shrimp" b;
    check_float "shrimp balance" 1. vb
  | other -> Alcotest.failf "expected 2 balances, got %d" (List.length other)

let test_explorer_render_mentions_chain () =
  let c = fresh_chain () in
  Chain.mint c ~account:"a" ~amount:1.;
  let text = Explorer.render c in
  Alcotest.(check bool) "has header" true
    (String.length text > 0 && String.sub text 0 10 = "chain test")

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule sim ~at:2. ~name:"b" (fun _ -> order := "b" :: !order);
  Sim.schedule sim ~at:1. ~name:"a" (fun _ -> order := "a" :: !order);
  Sim.schedule sim ~at:2. ~name:"c" (fun _ -> order := "c" :: !order);
  Sim.run sim;
  Alcotest.(check (list string)) "time then FIFO" [ "a"; "b"; "c" ]
    (List.rev !order);
  Alcotest.(check int) "executed" 3 (Sim.executed_count sim)

let test_sim_cascading () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.schedule sim ~at:1. ~name:"seed" (fun sim ->
      incr hits;
      Sim.schedule sim ~at:2. ~name:"child" (fun _ -> incr hits));
  Sim.run sim;
  Alcotest.(check int) "events cascade" 2 !hits

let test_sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:5. ~name:"x" (fun sim ->
      match Sim.schedule sim ~at:1. ~name:"past" (fun _ -> ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection");
  Sim.run sim

let test_sim_run_until () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.schedule sim ~at:1. ~name:"early" (fun _ -> incr hits);
  Sim.schedule sim ~at:10. ~name:"late" (fun _ -> incr hits);
  Sim.run_until sim 5.;
  Alcotest.(check int) "only early ran" 1 !hits;
  Sim.run sim;
  Alcotest.(check int) "rest ran" 2 !hits

let test_sim_trace_toggle () =
  let sim = Sim.create ~trace:false () in
  Sim.schedule sim ~at:1. ~name:"x" (fun _ -> ());
  Sim.run sim;
  Alcotest.(check (list (pair (float 0.) string))) "no trace recorded" []
    (Sim.trace sim);
  Alcotest.(check int) "still counted" 1 (Sim.executed_count sim)

let test_sim_deep_cascade_stack_safe () =
  (* A chain of 200k events, each scheduling the next: the recursive
     run loop this replaced would blow the stack here. *)
  let sim = Sim.create ~trace:false () in
  let hits = ref 0 in
  let rec step i s =
    incr hits;
    if i < 200_000 then
      Sim.schedule s ~at:(float_of_int (i + 1)) ~name:"c" (step (i + 1))
  in
  Sim.schedule sim ~at:0. ~name:"c" (step 0);
  Sim.run sim;
  Alcotest.(check int) "all executed" 200_001 !hits

(* --- Oracle ---------------------------------------------------------------------- *)

let test_oracle_flow () =
  let c = fresh_chain () in
  Chain.mint c ~account:"alice" ~amount:2.;
  Chain.mint c ~account:"bob" ~amount:2.;
  let o = Oracle.create c ~alice:"alice" ~bob:"bob" ~q:1.5 in
  Oracle.deposit o ~at:0.;
  check_float "alice charged" 0.5 (Chain.balance c ~account:"alice");
  check_float "vault holds 2q" 3.
    (Chain.balance c ~account:(Oracle.vault_account o));
  ignore (Oracle.release o ~at:1. ~to_:"bob" ~amount:3.);
  ignore (Chain.advance c ~until:4.);
  check_float "bob paid both deposits" 3.5 (Chain.balance c ~account:"bob");
  match Oracle.release o ~at:5. ~to_:"bob" ~amount:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overdraw must be rejected"

let test_oracle_double_deposit () =
  let c = fresh_chain () in
  Chain.mint c ~account:"alice" ~amount:2.;
  Chain.mint c ~account:"bob" ~amount:2.;
  let o = Oracle.create c ~alice:"alice" ~bob:"bob" ~q:1. in
  Oracle.deposit o ~at:0.;
  match Oracle.deposit o ~at:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double deposit must fail"

(* --- properties --------------------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"heap drains sorted" ~count:200
      (list_of_size (Gen.int_range 0 50) int)
      (fun xs ->
        let h = Heap.create ~cmp:compare in
        List.iter (Heap.push h) xs;
        Heap.to_sorted_list h = List.sort compare xs);
    Test.make ~name:"sha256 deterministic and 32 bytes" ~count:200
      string
      (fun s ->
        let d1 = Sha256.digest s and d2 = Sha256.digest s in
        String.equal d1 d2 && String.length d1 = 32);
    Test.make ~name:"HTLC/escrow machine safe under random ops" ~count:80
      (int_range 0 1_000_000)
      (fun seed ->
        let rng = Numerics.Rng.create ~seed () in
        let c = fresh_chain () in
        Chain.mint c ~account:"a" ~amount:50.;
        Chain.mint c ~account:"b" ~amount:50.;
        let secret = Secret.of_preimage "fuzz" in
        let t = ref 0. in
        for i = 0 to 30 do
          t := !t +. Numerics.Rng.uniform rng;
          let cid = Printf.sprintf "c%d" (i mod 5) in
          let payload =
            match Numerics.Rng.int_below rng 6 with
            | 0 ->
              Tx.Htlc_lock
                { contract_id = cid; sender = "a"; recipient = "b";
                  amount = Numerics.Rng.uniform rng *. 5.;
                  hash = secret.Secret.hash;
                  expiry = !t +. 1. +. (Numerics.Rng.uniform rng *. 10.) }
            | 1 -> Tx.Htlc_claim { contract_id = cid; preimage = secret.Secret.preimage }
            | 2 -> Tx.Htlc_claim { contract_id = cid; preimage = "wrong" }
            | 3 -> Tx.Htlc_refund { contract_id = cid }
            | 4 ->
              Tx.Escrow_lock
                { contract_id = "e" ^ cid; owner = "b"; counterparty = "a";
                  amount = Numerics.Rng.uniform rng *. 5.; arbiter = "w";
                  expiry = !t +. 1. +. (Numerics.Rng.uniform rng *. 10.) }
            | _ ->
              Tx.Escrow_decide
                { contract_id = "e" ^ cid; by = "w";
                  commit = Numerics.Rng.uniform rng < 0.5 }
          in
          ignore (Chain.submit c ~at:!t payload)
        done;
        ignore (Chain.advance c ~until:(!t +. 50.));
        (* Safety invariants: conservation, no negative balances, every
           contract settled (nothing stuck past all expiries). *)
        abs_float (Chain.total_supply c -. 100.) < 1e-6
        && List.for_all (fun (_, v) -> v >= -1e-9) (Chain.accounts c)
        && List.for_all
             (fun (account, v) ->
               not (String.length account >= 7
                    && String.sub account 0 7 = "escrow:")
               || abs_float v < 1e-9)
             (Chain.accounts c));
    Test.make ~name:"conservation and eventual refunds under random faults"
      ~count:60 (int_range 0 1_000_000)
      (fun seed ->
        let rng = Numerics.Rng.create ~seed () in
        let u () = Numerics.Rng.uniform rng in
        let halts =
          if u () < 0.5 then
            let h0 = 2. +. (u () *. 6.) in
            [ (h0, h0 +. (u () *. 4.)) ]
          else []
        in
        let faults =
          Faults.create ~drop_prob:(u () *. 0.5) ~delay_prob:(u ())
            ~delay:(Faults.Shifted_exponential { mean = 0.2 +. u (); cap = 4. })
            ~reorg_prob:(u () *. 0.3) ~halts ()
        in
        let c = faulty_chain ~seed faults in
        Chain.mint c ~account:"a" ~amount:50.;
        Chain.mint c ~account:"b" ~amount:50.;
        let secret = Secret.of_preimage "chaos" in
        let t = ref 0. in
        for i = 0 to 30 do
          t := !t +. u ();
          let cid = Printf.sprintf "c%d" (i mod 5) in
          let payload =
            match Numerics.Rng.int_below rng 4 with
            | 0 ->
              Tx.Htlc_lock
                { contract_id = cid; sender = "a"; recipient = "b";
                  amount = u () *. 5.; hash = secret.Secret.hash;
                  expiry = !t +. 1. +. (u () *. 10.) }
            | 1 ->
              Tx.Htlc_claim
                { contract_id = cid; preimage = secret.Secret.preimage }
            | 2 -> Tx.Htlc_refund { contract_id = cid }
            | _ -> Tx.Transfer { from_ = "b"; to_ = "a"; amount = u () }
          in
          ignore (Chain.submit c ~at:!t payload)
        done;
        (* Past every expiry (<= t + 11) plus refund lag and the fault
           horizon, every surviving lock must have auto-refunded: faults
           may defer settlement but never strand escrowed funds. *)
        ignore
          (Chain.advance c
             ~until:(!t +. 20. +. Faults.horizon_margin faults ~tau:2.));
        abs_float (Chain.total_supply c -. 100.) < 1e-6
        && List.for_all (fun (_, v) -> v >= -1e-9) (Chain.accounts c)
        && List.for_all
             (fun (account, v) ->
               not (String.length account >= 7
                    && String.sub account 0 7 = "escrow:")
               || abs_float v < 1e-9)
             (Chain.accounts c));
    Test.make ~name:"chain conserves supply" ~count:100
      (pair (int_range 0 1000) (list_of_size (Gen.int_range 0 10) (pair small_nat small_nat)))
      (fun (seed, ops) ->
        ignore seed;
        let c = fresh_chain () in
        Chain.mint c ~account:"a" ~amount:100.;
        Chain.mint c ~account:"b" ~amount:100.;
        List.iteri
          (fun i (x, y) ->
            let from_ = if x mod 2 = 0 then "a" else "b" in
            let to_ = if y mod 2 = 0 then "b" else "a" in
            ignore
              (Chain.submit c ~at:(float_of_int i)
                 (Tx.Transfer { from_; to_; amount = float_of_int (x mod 7) })))
          ops;
        ignore (Chain.advance c ~until:1000.);
        abs_float (Chain.total_supply c -. 200.) < 1e-9);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "chainsim"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million-a vector" `Slow test_sha256_long_input;
          Alcotest.test_case "padding boundaries" `Quick
            test_sha256_block_boundaries;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
        ] );
      ( "secret",
        [
          Alcotest.test_case "roundtrip" `Quick test_secret_roundtrip;
          Alcotest.test_case "fresh secrets distinct" `Quick
            test_secret_distinct;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "transfer" `Quick test_ledger_transfer;
          Alcotest.test_case "insufficient funds" `Quick
            test_ledger_insufficient;
        ] );
      ( "htlc",
        [
          Alcotest.test_case "claim ok" `Quick test_htlc_claim_ok;
          Alcotest.test_case "late claim rejected" `Quick test_htlc_claim_late;
          Alcotest.test_case "bad preimage rejected" `Quick
            test_htlc_claim_bad_preimage;
          Alcotest.test_case "refund rules" `Quick test_htlc_refund_rules;
          Alcotest.test_case "no double claim" `Quick test_htlc_no_double_claim;
        ] );
      ( "chain",
        [
          Alcotest.test_case "confirmation delay" `Quick
            test_chain_confirmation_delay;
          Alcotest.test_case "FIFO at equal times" `Quick
            test_chain_event_order_fifo;
          Alcotest.test_case "HTLC lifecycle" `Quick test_chain_htlc_lifecycle;
          Alcotest.test_case "auto-refund timing" `Quick
            test_chain_auto_refund_timing;
          Alcotest.test_case "claim at expiry boundary" `Quick
            test_chain_claim_beats_expiry_boundary;
          Alcotest.test_case "mempool visibility (eps)" `Quick
            test_chain_mempool_visibility;
          Alcotest.test_case "rejects past submissions" `Quick
            test_chain_rejects_past_submission;
          Alcotest.test_case "duplicate contract rejected" `Quick
            test_chain_duplicate_contract;
          Alcotest.test_case "eps < tau enforced" `Quick
            test_chain_mempool_delay_constraint;
        ] );
      ( "fees",
        [
          Alcotest.test_case "transfer fee" `Quick test_fees_on_transfer;
          Alcotest.test_case "HTLC cycle fees" `Quick test_fees_on_htlc_cycle;
          Alcotest.test_case "forgiven when broke" `Quick
            test_fees_forgiven_when_broke;
          Alcotest.test_case "forgiveness audited in receipt" `Quick
            test_fee_forgiveness_recorded_in_receipt;
          Alcotest.test_case "zero by default" `Quick test_fees_zero_by_default;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop keeps mempool visibility" `Quick
            test_fault_drop_keeps_mempool_visibility;
          Alcotest.test_case "delay bounded and deterministic" `Quick
            test_fault_delay_bounded_and_deterministic;
          Alcotest.test_case "reorg adds one tau" `Quick
            test_fault_reorg_adds_one_tau;
          Alcotest.test_case "halt defers confirmation and refund" `Quick
            test_fault_halt_defers_confirmation_and_refund;
          Alcotest.test_case "seed replay identical" `Quick
            test_fault_seed_replay_identical;
        ] );
      ( "escrow",
        [
          Alcotest.test_case "commit and no double decision" `Quick
            test_escrow_commit;
          Alcotest.test_case "only the arbiter decides" `Quick
            test_escrow_rejects_non_arbiter;
          Alcotest.test_case "expiry rules" `Quick test_escrow_expiry_rules;
          Alcotest.test_case "on-chain commit flow" `Quick
            test_chain_escrow_commit_flow;
          Alcotest.test_case "timeout refunds" `Quick
            test_chain_escrow_timeout_refunds;
          Alcotest.test_case "fake arbiter rejected" `Quick
            test_chain_escrow_fake_arbiter_rejected;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "blocks group by time" `Quick
            test_explorer_blocks_group_by_time;
          Alcotest.test_case "balances sorted nonzero" `Quick
            test_explorer_balances_sorted_nonzero;
          Alcotest.test_case "render header" `Quick
            test_explorer_render_mentions_chain;
        ] );
      ( "sim",
        [
          Alcotest.test_case "event ordering" `Quick test_sim_ordering;
          Alcotest.test_case "cascading events" `Quick test_sim_cascading;
          Alcotest.test_case "rejects past scheduling" `Quick
            test_sim_rejects_past;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "trace toggle" `Quick test_sim_trace_toggle;
          Alcotest.test_case "deep cascade stack-safe" `Quick
            test_sim_deep_cascade_stack_safe;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "deposit/release flow" `Quick test_oracle_flow;
          Alcotest.test_case "double deposit rejected" `Quick
            test_oracle_double_deposit;
        ] );
      ("properties", props);
    ]
