(* Chaos invariant suite: thousands of protocol runs under randomized
   fault schedules, crash injections and schedule slack, with
   machine-checked invariants on every run:

   - token conservation: per-chain deltas sum to zero and no escrowed
     or vaulted funds are stranded once every deadline (plus the fault
     horizon) has passed — expired locks are eventually refunded;
   - anomaly provenance: atomicity violations appear only when a crash
     was injected or the fault layer actually interfered (dropped,
     delayed, reorged or halt-deferred at least one event);
   - determinism: replaying the same (seed, schedule) reproduces the
     identical outcome, trace and telemetry.

   The iteration count defaults to 500 and scales with the CHAOS_ITERS
   environment variable (e.g. CHAOS_ITERS=5000 for a soak run). *)

let p = Swap.Params.defaults

let iters =
  match Sys.getenv_opt "CHAOS_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 500)
  | None -> 500

(* One uniform draw stream per scenario, derived from the scenario
   index, so the suite is reproducible run to run. *)
let scenario i =
  let rng = Numerics.Rng.create ~seed:(0xc4a05 + (31 * i)) () in
  let u () = Numerics.Rng.uniform rng in
  let mk_faults () =
    if u () < 0.15 then Chainsim.Faults.none
    else
      let halts =
        if u () < 0.3 then
          let h0 = u () *. 12. in
          [ (h0, h0 +. (u () *. 5.)) ]
        else []
      in
      let delay =
        match Numerics.Rng.int_below rng 3 with
        | 0 -> Chainsim.Faults.No_extra_delay
        | 1 ->
          Chainsim.Faults.Shifted_exponential
            { mean = 0.2 +. (u () *. 2.); cap = 6. }
        | _ ->
          Chainsim.Faults.Bounded_pareto
            { alpha = 1.5 +. u (); scale = 0.3 +. u (); cap = 8. }
      in
      Chainsim.Faults.create ~drop_prob:(u () *. 0.4) ~delay_prob:(u ())
        ~delay ~reorg_prob:(u () *. 0.3) ~halts ()
  in
  let faults_a = mk_faults () and faults_b = mk_faults () in
  let slack = if u () < 0.5 then 0. else u () *. 5. in
  let bob_off = if u () < 0.25 then Some (u () *. 12.) else None in
  let alice_off =
    if bob_off = None && u () < 0.15 then Some (u () *. 12.) else None
  in
  let retry =
    if u () < 0.5 then Swap.Agent.default_retry else Swap.Agent.no_retry
  in
  (faults_a, faults_b, slack, alice_off, bob_off, retry, 0x0dd + (101 * i))

let run_scenario (faults_a, faults_b, slack, alice_off, bob_off, retry, seed) =
  Swap.Protocol.run ~faults_a ~faults_b ?alice_offline_from:alice_off
    ?bob_offline_from:bob_off ~retry ~delay_t2:slack ~delay_t3:slack ~seed p
    ~p_star:2.

let interference (t : Swap.Protocol.telemetry) =
  let busy (f : Chainsim.Chain.fault_stats) =
    f.Chainsim.Chain.dropped + f.Chainsim.Chain.delayed
    + f.Chainsim.Chain.reorged + f.Chainsim.Chain.halted
    > 0
  in
  busy t.Swap.Protocol.fault_stats_a || busy t.Swap.Protocol.fault_stats_b

let test_invariants () =
  let anomalies = ref 0 and successes = ref 0 in
  for i = 0 to iters - 1 do
    let ((_, _, _, alice_off, bob_off, _, _) as sc) = scenario i in
    let r = run_scenario sc in
    let ctx msg = Printf.sprintf "scenario %d: %s" i msg in
    if
      abs_float (r.Swap.Protocol.alice_delta_a +. r.Swap.Protocol.bob_delta_a)
      > 1e-9
      || abs_float
           (r.Swap.Protocol.alice_delta_b +. r.Swap.Protocol.bob_delta_b)
         > 1e-9
    then Alcotest.fail (ctx "per-chain token deltas must sum to zero");
    if
      abs_float r.Swap.Protocol.escrow_leftover_a > 1e-9
      || abs_float r.Swap.Protocol.escrow_leftover_b > 1e-9
    then
      Alcotest.fail
        (ctx "funds stranded in escrow past the horizon (missed refund)");
    (match r.Swap.Protocol.outcome with
    | Swap.Protocol.Anomalous _ ->
      incr anomalies;
      if
        alice_off = None && bob_off = None
        && not (interference r.Swap.Protocol.telemetry)
      then
        Alcotest.fail
          (ctx "anomaly without any crash or fault interference")
    | Swap.Protocol.Success -> incr successes
    | _ -> ())
  done;
  (* The generator must actually exercise both failure and success. *)
  Alcotest.(check bool)
    (Printf.sprintf "saw successes (%d) and anomalies (%d) in %d runs"
       !successes !anomalies iters)
    true
    (!successes > 0 && !anomalies > 0)

let test_determinism () =
  for i = 0 to (iters / 10) - 1 do
    let sc = scenario (7 * i) in
    let a = run_scenario sc and b = run_scenario sc in
    if
      a.Swap.Protocol.outcome <> b.Swap.Protocol.outcome
      || a.Swap.Protocol.trace <> b.Swap.Protocol.trace
      || a.Swap.Protocol.telemetry <> b.Swap.Protocol.telemetry
    then Alcotest.failf "scenario %d: replay diverged" (7 * i)
  done

let test_zero_intensity_is_seed_behaviour () =
  (* The fault layer off + retries off must reproduce the plain runner
     bit for bit — the chaos machinery is a strict superset. *)
  let plain = Swap.Protocol.run p ~p_star:2. in
  let gated =
    Swap.Protocol.run ~faults_a:Chainsim.Faults.none
      ~faults_b:Chainsim.Faults.none ~retry:Swap.Agent.no_retry ~delay_t2:0.
      ~delay_t3:0. p ~p_star:2.
  in
  Alcotest.(check bool) "same outcome" true
    (plain.Swap.Protocol.outcome = gated.Swap.Protocol.outcome);
  Alcotest.(check bool) "same trace" true
    (plain.Swap.Protocol.trace = gated.Swap.Protocol.trace);
  Alcotest.(check bool) "same telemetry" true
    (plain.Swap.Protocol.telemetry = gated.Swap.Protocol.telemetry)

let () =
  Alcotest.run "chaos"
    [
      ( "invariants",
        [
          Alcotest.test_case
            (Printf.sprintf "%d randomized schedules" iters)
            `Quick test_invariants;
          Alcotest.test_case "seed replay determinism" `Quick test_determinism;
          Alcotest.test_case "zero intensity = seed behaviour" `Quick
            test_zero_intensity_is_seed_behaviour;
        ] );
    ]
