(* Smoke tests for the experiment registry: every experiment is
   registered, named uniquely, and the fast ones run end-to-end and
   mention their key findings.  The heavyweight Monte-Carlo experiments
   are exercised by the bench harness instead. *)

let fast_experiments =
  [ "tab1"; "tab3"; "fig2"; "fig3"; "fig4"; "fig5"; "eq29"; "fig7"; "fig9";
    "waiting"; "crash"; "chaos"; "negotiation"; "security"; "attribution" ]

let test_registry_complete () =
  let expected =
    [ "tab1"; "tab3"; "fig2"; "fig3"; "fig4"; "fig5"; "eq29"; "fig6"; "fig7";
      "fig8"; "fig9"; "mc"; "lattice"; "baselines"; "jumps"; "optionality";
      "selection"; "frictions"; "backtest"; "crash"; "ac3"; "waiting";
      "stablecoin"; "negotiation"; "security"; "multihop"; "uncertainty";
      "attribution"; "scorecard"; "presets" ]
  in
  let names = Experiments.Registry.names () in
  List.iter
    (fun e ->
      if not (List.mem e names) then Alcotest.failf "missing experiment %s" e)
    expected;
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length sorted)

let test_find () =
  (match Experiments.Registry.find "eq29" with
  | Some e -> Alcotest.(check string) "found" "eq29" e.Experiments.Registry.name
  | None -> Alcotest.fail "eq29 must resolve");
  Alcotest.(check bool) "unknown is None" true
    (Experiments.Registry.find "nope" = None)

let run_one name =
  match Experiments.Registry.find name with
  | None -> Alcotest.failf "experiment %s not registered" name
  | Some e ->
    let output = e.Experiments.Registry.run () in
    if String.length output < 200 then
      Alcotest.failf "%s: suspiciously short output (%d chars)" name
        (String.length output);
    output

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_fast_experiments_run () =
  List.iter (fun name -> ignore (run_one name)) fast_experiments

let test_key_findings_present () =
  let checks =
    [
      ("eq29", "1.5");
      ("tab1", "success");
      ("fig9", "SR rises monotonically");
      ("crash", "VIOLATED");
      ("chaos", "recovers with added slack");
      ("waiting", "incentive-compatible");
      ("security", "griefing");
    ]
  in
  List.iter
    (fun (name, marker) ->
      let out = run_one name in
      if not (contains out marker) then
        Alcotest.failf "%s: expected %S in the report" name marker)
    checks

let test_scorecard_all_pass () =
  if not (Experiments.Scorecard.all_pass ()) then
    Alcotest.fail "a replication claim failed; run 'experiment scorecard'"

let test_datasets_produce_csv () =
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some e -> (
        match e.Experiments.Registry.datasets with
        | None -> Alcotest.failf "%s should carry datasets" id
        | Some datasets ->
          List.iter
            (fun (filename, contents) ->
              if not (Filename.check_suffix filename ".csv") then
                Alcotest.failf "%s: dataset %s not .csv" id filename;
              let lines = String.split_on_char '\n' contents in
              if List.length lines < 3 then
                Alcotest.failf "%s: dataset %s nearly empty" id filename;
              let header_cols =
                List.length (String.split_on_char ',' (List.hd lines))
              in
              if header_cols < 2 then
                Alcotest.failf "%s: dataset %s lacks columns" id filename)
            (datasets ())))
    [ "fig5"; "fig9" ]

let test_renderer_basics () =
  let table =
    Experiments.Render.table ~header:[ "a"; "b" ]
      ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "aligned columns" true (contains table "333  4");
  let csv = Experiments.Render.csv ~header:[ "x" ] ~rows:[ [ "1" ]; [ "2" ] ] in
  Alcotest.(check string) "csv" "x\n1\n2\n" csv;
  let plot =
    Experiments.Render.ascii_plot ~width:20 ~height:5
      [ ("s", [| (0., 0.); (1., 1.) |]) ]
  in
  Alcotest.(check bool) "plot has legend" true (contains plot "[*] s");
  Alcotest.(check string) "fmt integers" "3" (Experiments.Render.fmt 3.)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "reports",
        [
          Alcotest.test_case "fast experiments run" `Slow
            test_fast_experiments_run;
          Alcotest.test_case "key findings present" `Slow
            test_key_findings_present;
          Alcotest.test_case "scorecard all PASS" `Slow
            test_scorecard_all_pass;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "figures emit parseable CSV" `Slow
            test_datasets_produce_csv;
        ] );
      ( "render",
        [ Alcotest.test_case "table/csv/plot" `Quick test_renderer_basics ] );
    ]
