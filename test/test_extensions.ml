(* Tests for the Section V extension modules: optionality pricing,
   protocol selection, staking yields and transaction fees. *)

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let p = Swap.Params.defaults

(* --- Optionality ------------------------------------------------------- *)

let test_rational_regime_matches_baseline () =
  let v = Swap.Optionality.value p ~p_star:2. Swap.Optionality.rational in
  check_float ~tol:1e-6 "SR agrees with Eq. 31"
    (Swap.Success.analytic p ~p_star:2.)
    v.Swap.Optionality.success_rate;
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  let band = Swap.Cutoff.p_t2_band p ~p_star:2. in
  check_float ~tol:1e-6 "Alice value agrees with Eq. 25"
    (Swap.Utility.a_t1_cont p ~p_star:2. ~k3 ~band)
    v.Swap.Optionality.alice_t1

let test_full_commitment_always_succeeds () =
  let v = Swap.Optionality.value p ~p_star:2. Swap.Optionality.both_committed in
  check_float ~tol:1e-6 "SR = 1 with no exits" 1. v.Swap.Optionality.success_rate

let test_commitment_helps_counterparty () =
  let rational = Swap.Optionality.value p ~p_star:2. Swap.Optionality.rational in
  let a_committed =
    Swap.Optionality.value p ~p_star:2. Swap.Optionality.alice_committed
  in
  let b_committed =
    Swap.Optionality.value p ~p_star:2. Swap.Optionality.bob_committed
  in
  if a_committed.Swap.Optionality.bob_t1 <= rational.Swap.Optionality.bob_t1 then
    Alcotest.fail "Alice's commitment must raise Bob's value";
  if b_committed.Swap.Optionality.alice_t1 <= rational.Swap.Optionality.alice_t1
  then Alcotest.fail "Bob's commitment must raise Alice's value";
  if a_committed.Swap.Optionality.success_rate
     <= rational.Swap.Optionality.success_rate
  then Alcotest.fail "commitment must raise the success rate"

let test_option_values_grow_with_volatility () =
  let ov sigma =
    Swap.Optionality.option_values (Swap.Params.with_sigma p sigma) ~p_star:2.
  in
  let low = ov 0.06 and high = ov 0.12 in
  if high.Swap.Optionality.bob_option <= low.Swap.Optionality.bob_option then
    Alcotest.fail "Bob's option must appreciate with volatility";
  if high.Swap.Optionality.alice_option <= low.Swap.Optionality.alice_option
  then Alcotest.fail "Alice's option must appreciate with volatility";
  if low.Swap.Optionality.alice_option < 0. then
    Alcotest.fail "options should be nonnegative at these parameters";
  check_float ~tol:1e-9 "committed SR is 1" 1.
    low.Swap.Optionality.sr_all_committed

(* --- Selection ----------------------------------------------------------- *)

let test_selection_plain_matches_baseline () =
  let a = Swap.Selection.assess p ~p_star:2. Swap.Selection.Plain in
  check_float ~tol:1e-6 "plain SR"
    (Swap.Success.analytic p ~p_star:2.)
    a.Swap.Selection.success_rate;
  Alcotest.(check bool) "plain adoptable at defaults" true
    a.Swap.Selection.adoptable

let test_selection_collateral_beats_plain_on_surplus () =
  let plain = Swap.Selection.assess p ~p_star:2. Swap.Selection.Plain in
  let coll = Swap.Selection.assess p ~p_star:2. (Swap.Selection.Collateral 0.5) in
  let surplus a = a.Swap.Selection.alice_net +. a.Swap.Selection.bob_net in
  if surplus coll <= surplus plain then
    Alcotest.fail "collateral should raise joint surplus at defaults"

let test_selection_choice_consistency () =
  let menu =
    [ Swap.Selection.Plain; Swap.Selection.Collateral 0.5;
      Swap.Selection.Premium 0.5 ]
  in
  let choice = Swap.Selection.choose p ~p_star:2. menu in
  (match choice.Swap.Selection.joint with
  | Some _ -> ()
  | None -> Alcotest.fail "a joint choice must exist at defaults");
  (* The joint choice must be adoptable. *)
  match choice.Swap.Selection.joint with
  | Some m ->
    let a = Swap.Selection.assess p ~p_star:2. m in
    Alcotest.(check bool) "joint choice adoptable" true a.Swap.Selection.adoptable
  | None -> ()

let test_premium_shifts_surplus_to_bob () =
  let plain = Swap.Selection.assess p ~p_star:2. Swap.Selection.Plain in
  let prem = Swap.Selection.assess p ~p_star:2. (Swap.Selection.Premium 0.5) in
  if prem.Swap.Selection.bob_net <= plain.Swap.Selection.bob_net then
    Alcotest.fail "the premium must benefit Bob";
  if prem.Swap.Selection.alice_net >= plain.Swap.Selection.alice_net then
    Alcotest.fail "the premium is a cost to Alice"

(* --- Staking ---------------------------------------------------------------- *)

let test_staking_zero_reduces_to_baseline () =
  let s = Swap.Staking.create p ~yield_a:0. ~yield_b:0. in
  check_float ~tol:1e-12 "cutoff" (Swap.Cutoff.p_t3_low p ~p_star:2.)
    (Swap.Staking.p_t3_low s ~p_star:2.);
  check_float ~tol:1e-6 "SR"
    (Swap.Success.analytic p ~p_star:2.)
    (Swap.Staking.success_rate s ~p_star:2.);
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  check_float ~tol:1e-12 "b_t2_cont"
    (Swap.Utility.b_t2_cont p ~p_star:2. ~k3 ~p_t2:1.9)
    (Swap.Staking.b_t2_cont s ~p_star:2. ~p_t2:1.9)

let test_staking_directions () =
  let sr ~ya ~yb =
    Swap.Staking.success_rate
      (Swap.Staking.create p ~yield_a:ya ~yield_b:yb)
      ~p_star:2.
  in
  (* Token_b yield penalises Bob's lock: SR falls. *)
  if sr ~ya:0. ~yb:0.004 >= sr ~ya:0. ~yb:0. then
    Alcotest.fail "Token_b staking must lower SR";
  (* Token_a yield erodes Alice's refund option: she reveals more, SR rises. *)
  if sr ~ya:0.004 ~yb:0. <= sr ~ya:0. ~yb:0. then
    Alcotest.fail "Token_a staking must raise SR";
  (* Cutoff falls with yield_a. *)
  let cut ya =
    Swap.Staking.p_t3_low (Swap.Staking.create p ~yield_a:ya ~yield_b:0.) ~p_star:2.
  in
  if cut 0.004 >= cut 0. then Alcotest.fail "cutoff must fall with yield_a"

let test_staking_validation () =
  match Swap.Staking.create p ~yield_a:(-0.01) ~yield_b:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative yield must be rejected"

(* --- Fees ---------------------------------------------------------------------- *)

let test_fees_zero_reduces_to_baseline () =
  let f = Swap.Fees.create p ~fee_a:0. ~fee_b:0. in
  check_float ~tol:1e-12 "cutoff" (Swap.Cutoff.p_t3_low p ~p_star:2.)
    (Swap.Fees.p_t3_low f ~p_star:2.);
  check_float ~tol:1e-6 "SR"
    (Swap.Success.analytic p ~p_star:2.)
    (Swap.Fees.success_rate f ~p_star:2.);
  (match Swap.Fees.p_star_band f with
  | Some (lo, hi) ->
    (match Swap.Cutoff.p_star_band_endpoints p with
    | Some (lo', hi') ->
      check_float ~tol:1e-3 "band lo" lo' lo;
      check_float ~tol:1e-3 "band hi" hi' hi
    | None -> Alcotest.fail "baseline band expected")
  | None -> Alcotest.fail "zero-fee band expected")

let test_fees_raise_cutoff_and_lower_sr () =
  let f = Swap.Fees.create p ~fee_a:0.05 ~fee_b:0.05 in
  if Swap.Fees.p_t3_low f ~p_star:2. <= Swap.Cutoff.p_t3_low p ~p_star:2. then
    Alcotest.fail "claim fee must raise Alice's cutoff";
  if Swap.Fees.success_rate f ~p_star:2. >= Swap.Success.analytic p ~p_star:2.
  then Alcotest.fail "fees must lower SR"

let test_fees_band_shrinks () =
  let width fee =
    match Swap.Fees.p_star_band (Swap.Fees.create p ~fee_a:fee ~fee_b:fee) with
    | Some (lo, hi) -> hi -. lo
    | None -> 0.
  in
  if not (width 0.05 < width 0.01 && width 0.01 < width 0.) then
    Alcotest.fail "the feasible band must shrink with fees"

let test_fees_notional_scaling () =
  let f = Swap.Fees.create p ~fee_a:0.05 ~fee_b:0.05 in
  let net n =
    Swap.Fees.a_t1_net (Swap.Fees.create ~notional:n p ~fee_a:0.05 ~fee_b:0.05)
      ~p_star:2.
  in
  if net 0.1 >= 0. then Alcotest.fail "tiny trades must be unprofitable";
  if net 5. <= 0. then Alcotest.fail "large trades must absorb fees";
  match Swap.Fees.break_even_notional f ~p_star:2. with
  | None -> Alcotest.fail "break-even expected"
  | Some n ->
    if net (n *. 1.1) <= 0. then Alcotest.fail "above break-even profitable";
    if net (n *. 0.9) >= 0. then Alcotest.fail "below break-even unprofitable"

let test_fees_validation () =
  (match Swap.Fees.create p ~fee_a:(-1.) ~fee_b:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative fee rejected");
  match Swap.Fees.create ~notional:0. p ~fee_a:0. ~fee_b:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero notional rejected"

(* --- Generic price-model solver ---------------------------------------------------- *)

let test_generic_gbm_matches_closed_form () =
  let m = Swap.Generic_model.gbm p in
  List.iter
    (fun p_star ->
      check_float ~tol:1e-6
        (Printf.sprintf "cutoff at %g" p_star)
        (Swap.Cutoff.p_t3_low p ~p_star)
        (Swap.Generic_model.p_t3_low p m ~p_star);
      check_float ~tol:1e-5
        (Printf.sprintf "SR at %g" p_star)
        (Swap.Success.analytic p ~p_star)
        (Swap.Generic_model.success_rate p m ~p_star);
      let k3 = Swap.Cutoff.p_t3_low p ~p_star in
      check_float ~tol:1e-6 "b_t2_cont"
        (Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2:1.9)
        (Swap.Generic_model.b_t2_cont p m ~p_star ~p_t2:1.9))
    [ 1.8; 2.; 2.2 ]

let test_generic_ou_raises_sr () =
  (* A peg at the agreed price with same instantaneous vol: reliability
     improves monotonically with the reversion speed. *)
  let sr kappa =
    let ou = Stochastic.Exp_ou.create ~kappa ~theta_price:2. ~sigma:0.1 in
    Swap.Generic_model.success_rate p (Swap.Generic_model.exp_ou ou) ~p_star:2.
  in
  let gbm_sr = Swap.Success.analytic p ~p_star:2. in
  if not (sr 0.05 > gbm_sr && sr 0.2 > sr 0.05) then
    Alcotest.fail "mean reversion must raise SR monotonically"

let test_generic_ou_mc_agrees () =
  let ou = Stochastic.Exp_ou.create ~kappa:0.1 ~theta_price:2. ~sigma:0.1 in
  let m = Swap.Generic_model.exp_ou ou in
  let analytic = Swap.Generic_model.success_rate p m ~p_star:2. in
  let mc =
    Swap.Montecarlo.run ~trials:60_000 ~seed:77
      ~sampler:(Swap.Generic_model.sampler m)
      p ~p_star:2.
      ~policy:(Swap.Generic_model.policy p m ~p_star:2.)
  in
  let lo, hi = mc.Swap.Montecarlo.ci95 in
  if analytic < lo -. 0.01 || analytic > hi +. 0.01 then
    Alcotest.failf "OU MC %g (CI %g-%g) vs analytic %g"
      mc.Swap.Montecarlo.rate lo hi analytic

let test_generic_ou_lowers_cutoff () =
  let ou = Stochastic.Exp_ou.create ~kappa:0.2 ~theta_price:2. ~sigma:0.1 in
  let cutoff =
    Swap.Generic_model.p_t3_low p (Swap.Generic_model.exp_ou ou) ~p_star:2.
  in
  if cutoff >= Swap.Cutoff.p_t3_low p ~p_star:2. then
    Alcotest.fail "reversion to the peg must lower Alice's cutoff"

(* --- Bargaining ---------------------------------------------------------------------- *)

let test_nash_rate_in_band () =
  match (Swap.Bargaining.nash_rate p, Swap.Cutoff.p_star_band_endpoints p) with
  | Some split, Some (lo, hi) ->
    if split.Swap.Bargaining.p_star < lo || split.Swap.Bargaining.p_star > hi
    then Alcotest.fail "Nash rate must be feasible";
    if split.Swap.Bargaining.alice_gain <= 0. then
      Alcotest.fail "Alice must gain at the Nash rate";
    if split.Swap.Bargaining.bob_gain <= 0. then
      Alcotest.fail "Bob must gain at the Nash rate";
    check_float ~tol:1e-9 "product consistency"
      (split.Swap.Bargaining.alice_gain *. split.Swap.Bargaining.bob_gain)
      split.Swap.Bargaining.nash_product
  | _ -> Alcotest.fail "Nash rate must exist at defaults"

let test_nash_rate_locally_optimal () =
  match Swap.Bargaining.nash_rate ~grid:80 p with
  | None -> Alcotest.fail "expected a solution"
  | Some split ->
    let product p_star =
      let a, b = Swap.Bargaining.gains p ~p_star in
      a *. b
    in
    let x = split.Swap.Bargaining.p_star in
    if product (x +. 0.05) > split.Swap.Bargaining.nash_product +. 1e-6
       || product (x -. 0.05) > split.Swap.Bargaining.nash_product +. 1e-6
    then Alcotest.fail "neighbours must not beat the Nash product"

let test_engagement_game_structure () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let good = Swap.Bargaining.analyse_engagement c ~p_star:2. in
  Alcotest.(check bool) "engage/engage NE at a fair rate" true
    good.Swap.Bargaining.both_engage_is_equilibrium;
  Alcotest.(check bool) "coordination failure also NE" true
    good.Swap.Bargaining.coordination_failure_possible;
  let bad = Swap.Bargaining.analyse_engagement c ~p_star:4. in
  Alcotest.(check bool) "no engagement at an absurd rate" false
    bad.Swap.Bargaining.both_engage_is_equilibrium

let test_engagement_matches_initiation_set () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let set = Swap.Collateral.initiation_set c in
  List.iter
    (fun p_star ->
      let e = Swap.Bargaining.analyse_engagement c ~p_star in
      let in_set = Swap.Intervals.contains set p_star in
      if in_set && not e.Swap.Bargaining.both_engage_is_equilibrium then
        Alcotest.failf "engage/engage must be NE inside the set (P*=%g)" p_star)
    [ 1.9; 2.; 2.2 ]

(* --- Bayesian (incomplete information) ------------------------------------------------ *)

let test_bayesian_point_belief_is_complete_info () =
  let b = Swap.Bayesian.point_belief 0.3 in
  check_float ~tol:1e-9 "band matches"
    (Swap.Utility.b_t2_cont p ~p_star:2.
       ~k3:(Swap.Cutoff.p_t3_low p ~p_star:2.)
       ~p_t2:1.9)
    (Swap.Bayesian.b_t2_cont_mixed p ~belief_on_alice:b ~p_star:2. ~p_t2:1.9);
  check_float ~tol:1e-6 "SR matches Eq. 31"
    (Swap.Success.analytic p ~p_star:2.)
    (Swap.Bayesian.success_rate_given_alice p ~belief_on_alice:b
       ~true_alpha_alice:0.3 ~p_star:2.);
  check_float ~tol:1e-6 "ex-ante equals realised for a point belief"
    (Swap.Bayesian.ex_ante_success_rate p ~belief_on_alice:b ~p_star:2.)
    (Swap.Success.analytic p ~p_star:2.)

let test_bayesian_spread_lowers_ex_ante_sr () =
  let sr pairs =
    Swap.Bayesian.ex_ante_success_rate p
      ~belief_on_alice:(Swap.Bayesian.belief pairs)
      ~p_star:2.
  in
  let point = sr [ (1., 0.3) ] in
  let narrow = sr [ (0.5, 0.2); (0.5, 0.4) ] in
  let wide = sr [ (0.5, 0.05); (0.5, 0.55) ] in
  if not (point > narrow && narrow > wide) then
    Alcotest.failf "dispersion must lower ex-ante SR: %g %g %g" point narrow
      wide

let test_bayesian_adverse_selection () =
  let b = Swap.Bayesian.belief [ (0.5, 0.1); (0.5, 0.5) ] in
  let low =
    Swap.Bayesian.success_rate_given_alice p ~belief_on_alice:b
      ~true_alpha_alice:0.1 ~p_star:2.
  in
  let high =
    Swap.Bayesian.success_rate_given_alice p ~belief_on_alice:b
      ~true_alpha_alice:0.5 ~p_star:2.
  in
  if low >= high then Alcotest.fail "low types must fail more often";
  (* Ex-ante is the belief mixture of the type-wise rates. *)
  check_float ~tol:1e-9 "mixture identity"
    (0.5 *. (low +. high))
    (Swap.Bayesian.ex_ante_success_rate p ~belief_on_alice:b ~p_star:2.)

let test_bayesian_mc_cross_check () =
  (* Simulate the Bayesian game: nature draws Alice's type, Bob plays
     the belief band, Alice reveals per her true cutoff. *)
  let b = Swap.Bayesian.belief [ (0.5, 0.1); (0.5, 0.5) ] in
  let p_star = 2. in
  let band = Swap.Bayesian.p_t2_band_mixed p ~belief_on_alice:b ~p_star in
  let gbm = Swap.Params.gbm p in
  let rng = Numerics.Rng.create ~seed:1234 () in
  let trials = 60_000 in
  let successes = ref 0 in
  for _ = 1 to trials do
    let alpha =
      if Numerics.Rng.uniform rng < 0.5 then 0.1 else 0.5
    in
    let k3 =
      Swap.Cutoff.p_t3_low (Swap.Params.with_alpha_alice p alpha) ~p_star
    in
    let p_t2 =
      Stochastic.Gbm.sample rng gbm ~p0:p.Swap.Params.p0 ~tau:p.Swap.Params.tau_a
    in
    if Swap.Intervals.contains band p_t2 then begin
      let p_t3 = Stochastic.Gbm.sample rng gbm ~p0:p_t2 ~tau:p.Swap.Params.tau_b in
      if p_t3 > k3 then incr successes
    end
  done;
  let mc = float_of_int !successes /. float_of_int trials in
  let analytic =
    Swap.Bayesian.ex_ante_success_rate p ~belief_on_alice:b ~p_star
  in
  if abs_float (mc -. analytic) > 0.01 then
    Alcotest.failf "Bayesian MC %g vs analytic %g" mc analytic

let test_bayesian_validation () =
  (match Swap.Bayesian.belief [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty belief rejected");
  (match Swap.Bayesian.belief [ (0., 0.3) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero weight rejected");
  let b = Swap.Bayesian.belief [ (2., 0.2); (2., 0.4) ] in
  check_float ~tol:1e-12 "weights normalised" 0.3 (Swap.Bayesian.mean_alpha b)

(* --- Griefing ------------------------------------------------------------------------- *)

let test_griefing_costs_positive () =
  let g = Swap.Griefing.analyse p ~p_star:2. in
  if g.Swap.Griefing.attacker_cost <= 0. then
    Alcotest.fail "attacking must cost something";
  if g.Swap.Griefing.victim_damage <= 0. then
    Alcotest.fail "the victim must be damaged";
  check_float ~tol:1e-9 "factor consistency"
    (g.Swap.Griefing.victim_damage /. g.Swap.Griefing.attacker_cost)
    g.Swap.Griefing.griefing_factor;
  (* Victim's capital is locked from t2 until t7 = 3 tau_b later. *)
  check_float ~tol:1e-9 "lock hours" (3. *. 4.) g.Swap.Griefing.victim_lock_hours

let test_griefing_worse_for_impatient_victims () =
  let base = Swap.Griefing.analyse p ~p_star:2. in
  let impatient =
    Swap.Griefing.analyse (Swap.Params.with_r_bob p 0.03) ~p_star:2.
  in
  if impatient.Swap.Griefing.griefing_factor
     <= base.Swap.Griefing.griefing_factor
  then Alcotest.fail "impatient victims must suffer a higher factor"

let test_griefing_deposit_deters () =
  let p' = Swap.Params.with_r_bob p 0.03 in
  match Swap.Griefing.deterrence_deposit p' ~p_star:2. with
  | None -> Alcotest.fail "a deterrence deposit must exist"
  | Some q ->
    let at = Swap.Griefing.analyse ~q_alice:q p' ~p_star:2. in
    if at.Swap.Griefing.griefing_factor > 1. +. 1e-3 then
      Alcotest.fail "the deposit must push the factor to 1";
    let below = Swap.Griefing.analyse ~q_alice:(q /. 2.) p' ~p_star:2. in
    if below.Swap.Griefing.griefing_factor <= 1. then
      Alcotest.fail "half the deposit must not suffice"

let test_griefing_trivial_when_factor_below_one () =
  (* Symmetric defaults already have factor < 1: no deposit needed. *)
  match Swap.Griefing.deterrence_deposit p ~p_star:2. with
  | Some 0. -> ()
  | Some q -> Alcotest.failf "expected 0 deposit, got %g" q
  | None -> Alcotest.fail "expected Some 0."

(* --- Repeated interaction --------------------------------------------------------------- *)

let test_repeated_surplus_positive () =
  if Swap.Repeated.surplus_per_trade p ~p_star:2. <= 0. then
    Alcotest.fail "trade surplus must be positive at defaults"

let test_repeated_continuation_value_monotone () =
  let pv tpw =
    Swap.Repeated.continuation_value p ~p_star:2.
      { Swap.Repeated.trades_per_week = tpw; horizon_weeks = 26. }
  in
  if not (pv 1. < pv 7. && pv 7. < pv 56.) then
    Alcotest.fail "continuation value must grow with trade frequency"

let test_repeated_bistability () =
  let solve tpw =
    Swap.Repeated.solve p ~p_star:2.
      { Swap.Repeated.trades_per_week = tpw; horizon_weeks = 26. }
  in
  let casual = solve 0.5 in
  let intense = solve 56. in
  if casual.Swap.Repeated.alpha_endogenous > 0.01 then
    Alcotest.fail "casual relationships must unravel";
  check_float ~tol:1e-6 "one-shot SR is zero" 0. casual.Swap.Repeated.sr_one_shot;
  if intense.Swap.Repeated.alpha_endogenous < 0.3 then
    Alcotest.fail "intense relationships must sustain at least the paper's alpha";
  if intense.Swap.Repeated.sr_endogenous <= 0.9 then
    Alcotest.fail "sustained premium must make swaps near-certain"

(* --- Relationship simulation ------------------------------------------------------ *)

let test_relationship_faithful_beats_opportunist () =
  let open Swap.Relationship in
  let total (a, b, _) = a +. b in
  let ff = mean_totals ~relationships:150 p ~alice:Faithful ~bob:Faithful in
  let oo =
    mean_totals ~relationships:150 p ~alice:Opportunist ~bob:Opportunist
  in
  if total ff <= total oo then
    Alcotest.fail "faithful pairs must out-earn opportunist pairs";
  let _, _, rounds_ff = ff and _, _, rounds_oo = oo in
  if rounds_ff <= rounds_oo then
    Alcotest.fail "faithful pairs must survive longer"

let test_relationship_collateral_extends_life () =
  let open Swap.Relationship in
  let _, _, bare = mean_totals ~relationships:150 p ~alice:Faithful ~bob:Faithful in
  let _, _, secured =
    mean_totals ~relationships:150 ~q:0.5 p ~alice:Faithful ~bob:Faithful
  in
  if secured <= 3. *. bare then
    Alcotest.fail "a Section IV deposit must extend relationships several-fold"

let test_relationship_grim_trigger_semantics () =
  let open Swap.Relationship in
  let r = run ~seed:7 ~rounds:50 p ~alice:Faithful ~bob:Faithful in
  (match r.ended with
  | Horizon ->
    Alcotest.(check int) "horizon means all rounds" 50 r.rounds_completed
  | Defection { round; _ } ->
    Alcotest.(check int) "defection round counts completed swaps" round
      r.rounds_completed);
  if r.alice_total <= 0. || r.bob_total <= 0. then
    Alcotest.fail "totals must be positive"

let test_relationship_validation () =
  match
    Swap.Relationship.run ~gap_hours:2. p ~alice:Swap.Relationship.Faithful
      ~bob:Swap.Relationship.Faithful
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too-short gaps must be rejected"

(* --- Equilibrium verification ------------------------------------------------------ *)

let test_equilibrium_alice_best_response () =
  List.iter
    (fun p_star ->
      let r = Swap.Equilibrium.check_alice_cutoff p ~p_star in
      if not r.Swap.Equilibrium.is_best_response then
        Alcotest.failf "Eq. 18 beaten by %s at P*=%g"
          r.Swap.Equilibrium.best_deviation p_star)
    [ 1.8; 2.; 2.2 ]

let test_equilibrium_bob_best_response () =
  List.iter
    (fun p_star ->
      let r = Swap.Equilibrium.check_bob_band p ~p_star in
      if not r.Swap.Equilibrium.is_best_response then
        Alcotest.failf "band beaten by %s at P*=%g"
          r.Swap.Equilibrium.best_deviation p_star)
    [ 1.8; 2.; 2.2 ]

let test_equilibrium_detects_bad_candidates () =
  (* Sanity: a deliberately wrong cutoff IS beaten by a probe. *)
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  let band = Swap.Cutoff.p_t2_band p ~p_star:2. in
  let wrong = Swap.Utility.a_t1_cont p ~p_star:2. ~k3:(k3 *. 2.) ~band in
  let right = Swap.Utility.a_t1_cont p ~p_star:2. ~k3 ~band in
  if wrong >= right then Alcotest.fail "doubling the cutoff must cost Alice"

(* --- properties ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"staking SR within [0,1]" ~count:25
      (pair (float_range 0. 0.01) (float_range 0. 0.01))
      (fun (ya, yb) ->
        let s = Swap.Staking.create p ~yield_a:ya ~yield_b:yb in
        let sr = Swap.Staking.success_rate s ~p_star:2. in
        sr >= 0. && sr <= 1. +. 1e-9);
    Test.make ~name:"fee SR decreasing in fee_b" ~count:15
      (pair (float_range 0. 0.08) (float_range 0.005 0.05))
      (fun (fee, bump) ->
        let sr f =
          Swap.Fees.success_rate (Swap.Fees.create p ~fee_a:0. ~fee_b:f)
            ~p_star:2.
        in
        sr (fee +. bump) <= sr fee +. 1e-9);
    Test.make ~name:"commitment SR dominates rational SR" ~count:10
      (float_range 0.06 0.15)
      (fun sigma ->
        let p' = Swap.Params.with_sigma p sigma in
        let r = Swap.Optionality.value p' ~p_star:2. Swap.Optionality.rational in
        let c =
          Swap.Optionality.value p' ~p_star:2. Swap.Optionality.both_committed
        in
        c.Swap.Optionality.success_rate
        >= r.Swap.Optionality.success_rate -. 1e-9);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "extensions"
    [
      ( "optionality",
        [
          Alcotest.test_case "rational regime = baseline" `Quick
            test_rational_regime_matches_baseline;
          Alcotest.test_case "full commitment -> SR 1" `Quick
            test_full_commitment_always_succeeds;
          Alcotest.test_case "commitment helps counterparty" `Quick
            test_commitment_helps_counterparty;
          Alcotest.test_case "options appreciate with volatility" `Quick
            test_option_values_grow_with_volatility;
        ] );
      ( "selection",
        [
          Alcotest.test_case "plain matches baseline" `Quick
            test_selection_plain_matches_baseline;
          Alcotest.test_case "collateral beats plain on surplus" `Quick
            test_selection_collateral_beats_plain_on_surplus;
          Alcotest.test_case "choice consistency" `Quick
            test_selection_choice_consistency;
          Alcotest.test_case "premium shifts surplus to Bob" `Quick
            test_premium_shifts_surplus_to_bob;
        ] );
      ( "staking",
        [
          Alcotest.test_case "zero yields = baseline" `Quick
            test_staking_zero_reduces_to_baseline;
          Alcotest.test_case "yield directions" `Quick test_staking_directions;
          Alcotest.test_case "validation" `Quick test_staking_validation;
        ] );
      ( "fees",
        [
          Alcotest.test_case "zero fees = baseline" `Quick
            test_fees_zero_reduces_to_baseline;
          Alcotest.test_case "fees raise cutoff, lower SR" `Quick
            test_fees_raise_cutoff_and_lower_sr;
          Alcotest.test_case "feasible band shrinks" `Quick
            test_fees_band_shrinks;
          Alcotest.test_case "notional scaling and break-even" `Quick
            test_fees_notional_scaling;
          Alcotest.test_case "validation" `Quick test_fees_validation;
        ] );
      ( "relationship",
        [
          Alcotest.test_case "faithful beats opportunist" `Slow
            test_relationship_faithful_beats_opportunist;
          Alcotest.test_case "collateral extends life" `Slow
            test_relationship_collateral_extends_life;
          Alcotest.test_case "grim-trigger semantics" `Quick
            test_relationship_grim_trigger_semantics;
          Alcotest.test_case "validation" `Quick test_relationship_validation;
        ] );
      ( "equilibrium",
        [
          Alcotest.test_case "alice's cutoff is a best response" `Quick
            test_equilibrium_alice_best_response;
          Alcotest.test_case "bob's band is a best response" `Quick
            test_equilibrium_bob_best_response;
          Alcotest.test_case "wrong candidates are beaten" `Quick
            test_equilibrium_detects_bad_candidates;
        ] );
      ( "bayesian",
        [
          Alcotest.test_case "point belief = complete info" `Quick
            test_bayesian_point_belief_is_complete_info;
          Alcotest.test_case "dispersion lowers ex-ante SR" `Quick
            test_bayesian_spread_lowers_ex_ante_sr;
          Alcotest.test_case "adverse selection" `Quick
            test_bayesian_adverse_selection;
          Alcotest.test_case "Monte-Carlo cross-check" `Slow
            test_bayesian_mc_cross_check;
          Alcotest.test_case "belief validation" `Quick
            test_bayesian_validation;
        ] );
      ( "griefing",
        [
          Alcotest.test_case "costs and damage positive" `Quick
            test_griefing_costs_positive;
          Alcotest.test_case "impatient victims suffer more" `Quick
            test_griefing_worse_for_impatient_victims;
          Alcotest.test_case "deterrence deposit works" `Quick
            test_griefing_deposit_deters;
          Alcotest.test_case "no deposit needed below factor 1" `Quick
            test_griefing_trivial_when_factor_below_one;
        ] );
      ( "repeated",
        [
          Alcotest.test_case "positive trade surplus" `Quick
            test_repeated_surplus_positive;
          Alcotest.test_case "continuation value monotone" `Quick
            test_repeated_continuation_value_monotone;
          Alcotest.test_case "bistable reputation map" `Quick
            test_repeated_bistability;
        ] );
      ( "generic_model",
        [
          Alcotest.test_case "GBM matches closed forms" `Quick
            test_generic_gbm_matches_closed_form;
          Alcotest.test_case "mean reversion raises SR" `Quick
            test_generic_ou_raises_sr;
          Alcotest.test_case "OU Monte-Carlo agreement" `Slow
            test_generic_ou_mc_agrees;
          Alcotest.test_case "OU lowers the t3 cutoff" `Quick
            test_generic_ou_lowers_cutoff;
        ] );
      ( "bargaining",
        [
          Alcotest.test_case "Nash rate feasible and positive" `Quick
            test_nash_rate_in_band;
          Alcotest.test_case "Nash rate locally optimal" `Quick
            test_nash_rate_locally_optimal;
          Alcotest.test_case "engagement game structure" `Quick
            test_engagement_game_structure;
          Alcotest.test_case "consistent with initiation set" `Quick
            test_engagement_matches_initiation_set;
        ] );
      ("properties", props);
    ]
