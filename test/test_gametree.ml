(* Tests for the extensive-form game substrate: construction,
   validation, and the backward-induction solver on games with known
   subgame-perfect equilibria. *)

open Gametree

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* --- construction and validation ------------------------------------- *)

let test_chance_validation () =
  Alcotest.check_raises "probabilities must sum to 1"
    (Invalid_argument "Game.chance: probabilities must sum to 1") (fun () ->
      ignore
        (Game.chance
           [ (0.5, Game.terminal [| 1. |]); (0.6, Game.terminal [| 0. |]) ]));
  Alcotest.check_raises "nonpositive probability"
    (Invalid_argument "Game.chance: probabilities must be positive") (fun () ->
      ignore
        (Game.chance
           [ (1.2, Game.terminal [| 1. |]); (-0.2, Game.terminal [| 0. |]) ]))

let test_decision_validation () =
  Alcotest.check_raises "empty actions"
    (Invalid_argument "Game.decision: empty action list") (fun () ->
      ignore (Game.decision ~player:0 []))

let test_size_depth () =
  let g = Classic.entry_deterrence in
  Alcotest.(check int) "size" 5 (Game.size g);
  Alcotest.(check int) "depth" 2 (Game.depth g);
  Alcotest.(check int) "players" 2 (Game.n_players g)

let test_validate_ok () =
  List.iter
    (fun g ->
      match Game.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "expected valid game: %s" e)
    [
      Classic.entry_deterrence;
      Classic.coin_then_choice;
      Classic.centipede ~rounds:6 ~pot0:3. ~growth:1.25;
      Classic.ultimatum ~levels:5;
    ]

let test_validate_catches_bad_player () =
  let bad = Game.decision ~player:7 [ ("x", Game.terminal [| 1.; 2. |]) ] in
  match Game.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid player index to be caught"

(* --- solver on classic games ------------------------------------------- *)

let test_entry_deterrence () =
  let s = Solve.solve Classic.entry_deterrence in
  Alcotest.(check (list string))
    "SPE path" [ "enter"; "accommodate" ] (Solve.principal_actions s);
  check_float "entrant value" 2. (Solve.expected_payoff s ~player:0);
  check_float "incumbent value" 1. (Solve.expected_payoff s ~player:1)

let test_centipede_takes_immediately () =
  (* With growth < 4/3 the unique SPE is to take at round 1. *)
  let g = Classic.centipede ~rounds:8 ~pot0:3. ~growth:1.25 in
  let s = Solve.solve g in
  (match Solve.principal_actions s with
  | "take" :: _ -> ()
  | other -> Alcotest.failf "expected immediate take, got %s" (String.concat "," other));
  check_float "mover gets 2/3 pot" 2. (Solve.expected_payoff s ~player:0)

let test_ultimatum_minimal_offer () =
  let s = Solve.solve (Classic.ultimatum ~levels:10) in
  (match Solve.principal_actions s with
  | [ "offer0"; "accept" ] -> ()
  | other -> Alcotest.failf "unexpected SPE path: %s" (String.concat "," other));
  check_float "proposer takes the pie" 10. (Solve.expected_payoff s ~player:0)

let test_chance_expectation () =
  let s = Solve.solve Classic.coin_then_choice in
  (match Solve.principal_actions s with
  | "risky" :: _ -> ()
  | other -> Alcotest.failf "expected risky, got %s" (String.concat "," other));
  check_float "value is the expectation" 1.5 (Solve.expected_payoff s ~player:0)

let test_tie_breaks_to_first_action () =
  let g =
    Game.decision ~player:0
      [
        ("first", Game.terminal ~label:"a" [| 1. |]);
        ("second", Game.terminal ~label:"b" [| 1. |]);
      ]
  in
  match Solve.solve g with
  | Solve.S_decision { chosen; _ } ->
    Alcotest.(check string) "tie -> first listed" "first" chosen
  | _ -> Alcotest.fail "expected decision root"

let test_outcome_probability () =
  let g =
    Game.chance
      [
        (0.25, Game.terminal ~label:"win" [| 1. |]);
        (0.75, Game.terminal ~label:"lose" [| 0. |]);
      ]
  in
  let s = Solve.solve g in
  check_float "P(win)" 0.25 (Solve.outcome_probability s (String.equal "win"));
  check_float "P(anything)" 1. (Solve.outcome_probability s (fun _ -> true))

let test_outcome_probability_respects_decisions () =
  (* The player avoids the "bad" branch, so its probability is 0. *)
  let g =
    Game.decision ~player:0
      [
        ("good", Game.terminal ~label:"good" [| 1. |]);
        ("bad", Game.terminal ~label:"bad" [| 0. |]);
      ]
  in
  let s = Solve.solve g in
  check_float "P(bad) = 0" 0. (Solve.outcome_probability s (String.equal "bad"))

let test_playout_frequencies () =
  let s = Solve.solve Classic.coin_then_choice in
  let rng = Numerics.Rng.create ~seed:9 () in
  let n = 50_000 in
  let heads = ref 0 in
  for _ = 1 to n do
    if Solve.sample_playout rng s = "heads" then incr heads
  done;
  let freq = float_of_int !heads /. float_of_int n in
  check_float ~tol:0.01 "playouts match outcome_probability"
    (Solve.outcome_probability s (String.equal "heads"))
    freq

let test_strategy_extraction () =
  let s = Solve.solve Classic.entry_deterrence in
  let strat = Solve.strategy s in
  Alcotest.(check (list (pair string string)))
    "strategy pairs"
    [ ("entry", "enter"); ("response", "accommodate") ]
    strat

(* --- normal-form games ----------------------------------------------------- *)

let prisoners_dilemma =
  Normal_form.create
    ~row_actions:[| "cooperate"; "defect" |]
    ~col_actions:[| "cooperate"; "defect" |]
    ~row_payoffs:[| [| 3.; 0. |]; [| 5.; 1. |] |]
    ~col_payoffs:[| [| 3.; 5. |]; [| 0.; 1. |] |]

let matching_pennies =
  Normal_form.create
    ~row_actions:[| "heads"; "tails" |]
    ~col_actions:[| "heads"; "tails" |]
    ~row_payoffs:[| [| 1.; -1. |]; [| -1.; 1. |] |]
    ~col_payoffs:[| [| -1.; 1. |]; [| 1.; -1. |] |]

let stag_hunt =
  Normal_form.create
    ~row_actions:[| "stag"; "hare" |]
    ~col_actions:[| "stag"; "hare" |]
    ~row_payoffs:[| [| 4.; 0. |]; [| 3.; 3. |] |]
    ~col_payoffs:[| [| 4.; 3. |]; [| 0.; 3. |] |]

let test_nf_prisoners_dilemma () =
  Alcotest.(check (list (pair int int)))
    "defect/defect" [ (1, 1) ]
    (Normal_form.pure_nash prisoners_dilemma);
  Alcotest.(check bool) "defect dominant for row" true
    (Normal_form.is_dominant prisoners_dilemma ~player:`Row 1);
  Alcotest.(check bool) "cooperate not dominant" false
    (Normal_form.is_dominant prisoners_dilemma ~player:`Row 0);
  let rows, cols = Normal_form.iterated_dominance prisoners_dilemma in
  Alcotest.(check (pair (list int) (list int)))
    "dominance solves it" ([ 1 ], [ 1 ]) (rows, cols)

let test_nf_matching_pennies () =
  Alcotest.(check (list (pair int int)))
    "no pure equilibrium" []
    (Normal_form.pure_nash matching_pennies);
  match Normal_form.mixed_nash_2x2 matching_pennies with
  | Some { Normal_form.row_p; col_p } ->
    check_float ~tol:1e-12 "row mixes 1/2" 0.5 row_p;
    check_float ~tol:1e-12 "col mixes 1/2" 0.5 col_p
  | None -> Alcotest.fail "mixed equilibrium expected"

let test_nf_stag_hunt_coordination () =
  Alcotest.(check (list (pair int int)))
    "two pure equilibria" [ (0, 0); (1, 1) ]
    (Normal_form.pure_nash stag_hunt)

let test_nf_expected_payoffs () =
  let r, c =
    Normal_form.expected_payoffs prisoners_dilemma ~row_p:[| 0.5; 0.5 |]
      ~col_p:[| 0.5; 0.5 |]
  in
  check_float ~tol:1e-12 "row expectation" 2.25 r;
  check_float ~tol:1e-12 "col expectation" 2.25 c

let test_nf_validation () =
  match
    Normal_form.create ~row_actions:[| "a" |] ~col_actions:[| "b" |]
      ~row_payoffs:[| [| 1.; 2. |] |]
      ~col_payoffs:[| [| 1. |] |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape mismatch must be rejected"

(* --- solver properties on random games ---------------------------------- *)

(* Random two-player game generator: bounded depth, random payoffs. *)
let rec random_game rng depth =
  let open Numerics in
  if depth = 0 || Rng.uniform rng < 0.3 then
    Game.terminal
      ~label:(if Rng.uniform rng < 0.5 then "even" else "odd")
      [| Rng.uniform_range rng ~lo:(-10.) ~hi:10.;
         Rng.uniform_range rng ~lo:(-10.) ~hi:10. |]
  else if Rng.uniform rng < 0.4 then begin
    let n = 2 + Rng.int_below rng 3 in
    let raw = Array.init n (fun _ -> 0.1 +. Rng.uniform rng) in
    let total = Array.fold_left ( +. ) 0. raw in
    Game.chance
      (Array.to_list
         (Array.map (fun w -> (w /. total, random_game rng (depth - 1))) raw))
  end
  else
    let n = 2 + Rng.int_below rng 2 in
    Game.decision ~player:(Rng.int_below rng 2)
      (List.init n (fun i ->
           (Printf.sprintf "a%d" i, random_game rng (depth - 1))))

let rec check_optimality = function
  | Solve.S_terminal _ -> true
  | Solve.S_decision { player; value; chosen; branches; _ } ->
    let chosen_value = (Solve.value (List.assoc chosen branches)).(player) in
    value.(player) = chosen_value
    && List.for_all
         (fun (_, child) -> (Solve.value child).(player) <= chosen_value +. 1e-12)
         branches
    && List.for_all (fun (_, child) -> check_optimality child) branches
  | Solve.S_chance { branches; _ } ->
    List.for_all (fun (_, child) -> check_optimality child) branches

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"SPE choice maximises own payoff everywhere" ~count:150
      (int_range 0 100_000)
      (fun seed ->
        let rng = Numerics.Rng.create ~seed () in
        let g = random_game rng 5 in
        check_optimality (Solve.solve g));
    Test.make ~name:"outcome probabilities sum to 1" ~count:150
      (int_range 0 100_000)
      (fun seed ->
        let rng = Numerics.Rng.create ~seed () in
        let g = random_game rng 5 in
        let s = Solve.solve g in
        abs_float (Solve.outcome_probability s (fun _ -> true) -. 1.) < 1e-9);
    Test.make ~name:"chance value is the branch average" ~count:100
      (int_range 0 100_000)
      (fun seed ->
        let rng = Numerics.Rng.create ~seed () in
        let g = random_game rng 4 in
        match Solve.solve g with
        | Solve.S_chance { value; branches; _ } ->
          let acc = Array.make (Array.length value) 0. in
          List.iter
            (fun (p, child) ->
              let v = Solve.value child in
              Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (p *. x)) v)
            branches;
          Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) acc value
        | _ -> true);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "gametree"
    [
      ( "construction",
        [
          Alcotest.test_case "chance validation" `Quick test_chance_validation;
          Alcotest.test_case "decision validation" `Quick
            test_decision_validation;
          Alcotest.test_case "size/depth/players" `Quick test_size_depth;
          Alcotest.test_case "classic games validate" `Quick test_validate_ok;
          Alcotest.test_case "bad player index caught" `Quick
            test_validate_catches_bad_player;
        ] );
      ( "solve",
        [
          Alcotest.test_case "entry deterrence SPE" `Quick
            test_entry_deterrence;
          Alcotest.test_case "centipede unravels" `Quick
            test_centipede_takes_immediately;
          Alcotest.test_case "ultimatum minimal offer" `Quick
            test_ultimatum_minimal_offer;
          Alcotest.test_case "chance expectation" `Quick
            test_chance_expectation;
          Alcotest.test_case "ties break to first action" `Quick
            test_tie_breaks_to_first_action;
          Alcotest.test_case "outcome probability" `Quick
            test_outcome_probability;
          Alcotest.test_case "decisions zero out avoided branches" `Quick
            test_outcome_probability_respects_decisions;
          Alcotest.test_case "strategy extraction" `Quick
            test_strategy_extraction;
          Alcotest.test_case "playout frequencies" `Slow
            test_playout_frequencies;
        ] );
      ( "normal_form",
        [
          Alcotest.test_case "prisoner's dilemma" `Quick
            test_nf_prisoners_dilemma;
          Alcotest.test_case "matching pennies (mixed)" `Quick
            test_nf_matching_pennies;
          Alcotest.test_case "stag hunt coordination" `Quick
            test_nf_stag_hunt_coordination;
          Alcotest.test_case "expected payoffs" `Quick
            test_nf_expected_payoffs;
          Alcotest.test_case "validation" `Quick test_nf_validation;
        ] );
      ("properties", props);
    ]
