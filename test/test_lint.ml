(* The htlc-lint rule set, driven against inline fixture sources
   (string-parsed — no tempfile I/O): each rule's positive and negative
   cases, the scoping that turns rules on/off by path, the suppression
   annotation round-trip (including the mandatory justification), the
   golden htlc-lint/v1 and v2 renderings, and clean-repo integration
   checks over the real lib/ tree — syntactic and deep (the deep pass
   reads the .cmt typedtrees the build produced; the dune deps order
   cmt production first).

   The deep suite also drives the whole-program pass end to end over
   the compiled half of bench/lint_fixture: cross-module taint,
   hot-path blocking, and cross-unit lock findings with their chains
   pinned, the justified deep suppression counted, and byte-identical
   findings across repeated runs. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* Findings for [src] attributed to [path]; default path puts the
   fixture on the strictest (lib/) scope. *)
let lint ?(path = "lib/swap/fixture.ml") src =
  fst (Lint.Driver.check_source ~path src)

let suppressed ?(path = "lib/swap/fixture.ml") src =
  snd (Lint.Driver.check_source ~path src)

let rules fs = List.map (fun (f : Lint.Finding.t) -> f.rule) fs

let severity_of rule fs =
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = rule) fs
  with
  | Some f -> Lint.Finding.severity_to_string f.severity
  | None -> Alcotest.failf "no %s finding" rule

(* --- R1: nondeterminism sources ------------------------------------------ *)

let test_nondet_random () =
  let fs = lint "let f () = Random.self_init ()\nlet g n = Random.int n\n" in
  check_int "both Random uses flagged" 2 (List.length fs);
  check_bool "rule id" true
    (List.for_all (fun r -> r = "nondet_random") (rules fs));
  check_str "error severity" "error" (severity_of "nondet_random" fs);
  (* Stdlib-qualified spelling is the same rule. *)
  check_int "Stdlib.Random counts too" 1
    (List.length (lint "let g n = Stdlib.Random.int n\n"));
  (* The RNG implementation itself is the one allowed home. *)
  check_int "allowed inside Numerics.Rng" 0
    (List.length
       (lint ~path:"lib/numerics/rng.ml" "let g n = Random.int n\n"))

let test_nondet_clock () =
  let fs =
    lint
      "let a () = Unix.gettimeofday ()\n\
       let b () = Unix.time ()\n\
       let c () = Sys.time ()\n"
  in
  check_int "all three clock reads flagged" 3 (List.length fs);
  check_bool "rule id" true
    (List.for_all (fun r -> r = "nondet_clock") (rules fs));
  check_int "allowed inside Obs.Monotonic" 0
    (List.length
       (lint ~path:"lib/obs/monotonic.ml" "let a () = Unix.gettimeofday ()\n"))

let test_hashtbl_order () =
  let src = "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n" in
  check_str "error on the deterministic (lib/) paths" "error"
    (severity_of "hashtbl_order" (lint src));
  check_str "warning elsewhere" "warning"
    (severity_of "hashtbl_order" (lint ~path:"bench/helper.ml" src));
  check_int "Hashtbl.find_opt is not order-sensitive" 0
    (List.length (lint "let f t k = Hashtbl.find_opt t k\n"))

(* --- R2: domain-safety of shared state ----------------------------------- *)

let test_shared_state () =
  let unguarded = "let cache : (string, int) Hashtbl.t = Hashtbl.create 8\n" in
  check_str "unguarded toplevel Hashtbl is an error" "error"
    (severity_of "shared_state" (lint unguarded));
  check_str "unguarded toplevel ref too" "error"
    (severity_of "shared_state" (lint "let hits = ref 0\n"));
  (* A Mutex (or Atomic) anywhere in the module is the guard convention. *)
  check_int "mutex in the module counts as guarded" 0
    (List.length
       (lint
          "let lock = Mutex.create ()\n\
           let cache : (string, int) Hashtbl.t = Hashtbl.create 8\n\
           let get k = Mutex.lock lock; let r = Hashtbl.find_opt cache k in\n\
           \  Mutex.unlock lock; r\n"));
  check_int "atomics are their own guard" 0
    (List.length (lint "let count = Atomic.make 0\n"));
  (* Allocation under a function happens per call — not shared. *)
  check_int "per-call state is fine" 0
    (List.length (lint "let f () = let acc = ref 0 in incr acc; !acc\n"));
  (* Outside the Pool-reachable prefixes the rule is off. *)
  check_int "scoped to lib/" 0
    (List.length (lint ~path:"bench/helper.ml" unguarded))

(* --- R3 / R4: exception and output hygiene ------------------------------- *)

let test_catch_all () =
  let src = "let f g = try g () with _ -> 0\n" in
  check_str "catch-all in lib/ is an error" "error"
    (severity_of "catch_all" (lint src));
  check_str "a warning outside" "warning"
    (severity_of "catch_all" (lint ~path:"examples/demo.ml" src));
  check_int "named exceptions are fine" 0
    (List.length (lint "let f g = try g () with Not_found -> 0\n"))

let test_output () =
  let fs =
    lint "let f () = print_endline \"x\"\nlet g () = Printf.printf \"y\"\n"
  in
  check_int "both prints flagged" 2 (List.length fs);
  check_str "error severity" "error" (severity_of "output" fs);
  check_int "binaries own their stdout" 0
    (List.length
       (lint ~path:"bin/tool.ml" "let f () = print_endline \"x\"\n"));
  check_int "sprintf builds strings, no finding" 0
    (List.length (lint "let f x = Printf.sprintf \"%d\" x\n"))

(* --- suppressions --------------------------------------------------------- *)

let test_suppression_roundtrip () =
  (* Binding-level [@@lint.allow] with a justification: finding gone,
     counted as suppressed, nothing else emitted. *)
  let src =
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
     [@@lint.allow hashtbl_order \"result sorted by the caller\"]\n"
  in
  check_int "suppressed finding is dropped" 0 (List.length (lint src));
  check_int "and counted" 1 (suppressed src);
  (* Module-level [@@@lint.allow] covers the whole file. *)
  let src =
    "[@@@lint.allow hashtbl_order \"order-insensitive module\"]\n\
     let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
     let g t = Hashtbl.iter (fun _ _ -> ()) t\n"
  in
  check_int "module-level allowance covers both" 0 (List.length (lint src));
  check_int "both counted" 2 (suppressed src);
  (* Expression-level [@lint.allow] covers just that expression. *)
  let src =
    "let f t u =\n\
     \  let a = (Hashtbl.fold (fun k _ acc -> k :: acc) t [] [@lint.allow \
     hashtbl_order \"sorted next line\"]) in\n\
     \  let b = Hashtbl.fold (fun k _ acc -> k :: acc) u [] in\n\
     \  (List.sort compare a, b)\n"
  in
  let fs = lint src in
  check_int "only the annotated expression is excused" 1 (List.length fs);
  check_str "the other one still fires" "hashtbl_order" (List.hd fs).rule

let test_suppression_hygiene () =
  (* No justification string -> the annotation itself is an error and
     the finding it would have covered still fires. *)
  let fs =
    lint
      "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
       [@@lint.allow hashtbl_order]\n"
  in
  check_bool "bad_suppression emitted" true
    (List.mem "bad_suppression" (rules fs));
  check_bool "original finding survives" true
    (List.mem "hashtbl_order" (rules fs));
  (* Unknown rule names are rejected, not silently inert. *)
  check_bool "unknown rule is a bad_suppression" true
    (List.mem "bad_suppression"
       (rules (lint "let x = 1 [@@lint.allow frobnicate \"whatever\"]\n")));
  (* Blank justification is no justification. *)
  check_bool "blank justification rejected" true
    (List.mem "bad_suppression"
       (rules (lint "let x = 1 [@@lint.allow output \"  \"]\n")));
  (* An allowance that matches nothing must rot visibly. *)
  let fs = lint "let x = 1 [@@lint.allow output \"nothing to allow\"]\n" in
  check_bool "unused_suppression emitted" true
    (List.mem "unused_suppression" (rules fs));
  check_str "as a warning" "warning" (severity_of "unused_suppression" fs)

(* --- parse failures ------------------------------------------------------- *)

let test_syntax_error () =
  let fs = lint "let f = (\n" in
  check_int "one finding" 1 (List.length fs);
  check_str "syntax rule" "syntax" (List.hd fs).rule;
  check_str "error severity" "error" (severity_of "syntax" fs)

(* --- golden htlc-lint/v1 rendering ---------------------------------------- *)

let test_json_golden () =
  let result =
    {
      Lint.Driver.findings =
        [
          {
            Lint.Finding.file = "lib/a.ml";
            line = 3;
            col = 4;
            rule = "output";
            severity = Lint.Finding.Error;
            message = "say \"no\"";
            chain = [];
          };
          {
            Lint.Finding.file = "lib/b.ml";
            line = 9;
            col = 0;
            rule = "unused_suppression";
            severity = Lint.Finding.Warning;
            message = "stale";
            chain = [];
          };
        ];
      files_scanned = 5;
      suppressed = 1;
      wall_s = 0.25;
      deep = None;
    }
  in
  check_str "golden document"
    ("{\"schema\":\"htlc-lint/v1\",\"type\":\"lint\",\"files_scanned\":5,"
   ^ "\"wall_s\":0.25,\"summary\":{\"errors\":1,\"warnings\":1,"
   ^ "\"suppressed\":1,\"by_rule\":{\"output\":1,\"unused_suppression\":1}},"
   ^ "\"findings\":[{\"file\":\"lib/a.ml\",\"line\":3,\"col\":4,"
   ^ "\"rule\":\"output\",\"severity\":\"error\",\"message\":\"say \\\"no\\\"\"},"
   ^ "{\"file\":\"lib/b.ml\",\"line\":9,\"col\":0,"
   ^ "\"rule\":\"unused_suppression\",\"severity\":\"warning\","
   ^ "\"message\":\"stale\"}]}")
    (Lint.Driver.render_json result);
  check_int "exit code gates on errors only" 1
    (Lint.Driver.exit_code result);
  (* The emitted document must satisfy the strict parser it will be
     validated with (round trip through Obs.Json_parse). *)
  match Obs.Json_parse.parse (Lint.Driver.render_json result) with
  | _ -> ()
  | exception Obs.Json_parse.Bad msg ->
    Alcotest.failf "render_json does not re-parse: %s" msg

let test_json_v2_golden () =
  (* With a deep summary present the document switches to htlc-lint/v2:
     a "deep" section after wall_s and a chain array on every finding
     (empty for syntactic ones). *)
  let result =
    {
      Lint.Driver.findings =
        [
          {
            Lint.Finding.file = "deep/keyer.ml";
            line = 8;
            col = 0;
            rule = "deep_taint";
            severity = Lint.Finding.Error;
            message = "leaks";
            chain =
              [
                { Lint.Finding.sym = "K.key"; file = "deep/keyer.ml"; line = 8 };
                { Lint.Finding.sym = "Unix.gettimeofday";
                  file = "deep/feed.ml"; line = 6 };
              ];
          };
        ];
      files_scanned = 2;
      suppressed = 0;
      wall_s = 0.5;
      deep = Some { cmt_files = 7; nodes = 10; edges = 9; deep_wall_s = 0.25 };
    }
  in
  check_str "golden v2 document"
    ("{\"schema\":\"htlc-lint/v2\",\"type\":\"lint\",\"files_scanned\":2,"
   ^ "\"wall_s\":0.5,\"deep\":{\"cmt_files\":7,\"nodes\":10,\"edges\":9,"
   ^ "\"wall_s\":0.25},\"summary\":{\"errors\":1,\"warnings\":0,"
   ^ "\"suppressed\":0,\"by_rule\":{\"deep_taint\":1}},"
   ^ "\"findings\":[{\"file\":\"deep/keyer.ml\",\"line\":8,\"col\":0,"
   ^ "\"rule\":\"deep_taint\",\"severity\":\"error\",\"message\":\"leaks\","
   ^ "\"chain\":[{\"symbol\":\"K.key\",\"file\":\"deep/keyer.ml\",\"line\":8},"
   ^ "{\"symbol\":\"Unix.gettimeofday\",\"file\":\"deep/feed.ml\","
   ^ "\"line\":6}]}]}")
    (Lint.Driver.render_json result);
  match Obs.Json_parse.parse (Lint.Driver.render_json result) with
  | _ -> ()
  | exception Obs.Json_parse.Bad msg ->
    Alcotest.failf "render_json (v2) does not re-parse: %s" msg

(* --- the deep pass over the compiled fixture ------------------------------ *)

(* Under [dune runtest] the cwd is [_build/default/test]; the fixture
   tree and its cmts sit one level up under bench/. *)
let fixture_root = "../bench/lint_fixture"
let fixture_cmts = "../bench/lint_fixture/deep"

let run_fixture_deep () =
  Lint.Driver.run ~deep:true ~cmt_root:fixture_cmts ~roots:[ fixture_root ] ()

let find_rule rule (r : Lint.Driver.result) =
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = rule) r.findings
  with
  | Some f -> f
  | None -> Alcotest.failf "no %s finding in the fixture run" rule

let test_deep_fixture_findings () =
  let r = run_fixture_deep () in
  (* The cross-module taint chain, pinned end to end. *)
  let taint = find_rule "deep_taint" r in
  check_str "taint anchors at the sink" "deep/keyer.ml" taint.file;
  check_str "taint chain"
    ("Lint_fixture_deep.Keyer.cache_key (deep/keyer.ml:8) -> "
   ^ "Lint_fixture_deep.Feed.stamp (deep/feed.ml:7) -> "
   ^ "Lint_fixture_deep.Feed.jitter (deep/feed.ml:6) -> "
   ^ "Unix.gettimeofday (deep/feed.ml:6)")
    (Lint.Finding.chain_to_string taint.chain);
  (* The hot-path blocking chain. *)
  let blocking = find_rule "deep_blocking" r in
  check_str "blocking anchors at the call site" "deep/nap.ml" blocking.file;
  check_str "blocking chain"
    ("Lint_fixture_deep.Pump.loop (deep/pump.ml:6) -> "
   ^ "Lint_fixture_deep.Nap.rest (deep/nap.ml:4) -> "
   ^ "Unix.sleep (deep/nap.ml:4)")
    (Lint.Finding.chain_to_string blocking.chain);
  (* The cross-unit lock violation: access frame, then definition. *)
  let lock = find_rule "deep_lock" r in
  check_str "lock anchors at the access site" "deep/prober.ml" lock.file;
  check_str "lock chain"
    ("Lint_fixture_deep.Prober.census (deep/prober.ml:5) -> "
   ^ "Lint_fixture_deep.Registry.table (deep/registry.ml:7)")
    (Lint.Finding.chain_to_string lock.chain);
  (* Keyer.salted_key stages the same taint under a justified allowance:
     it must be gone from the findings and counted — the deep
     suppression round-trip (on top of the syntactic one in lib/). *)
  check_int "exactly one taint sink survives" 1
    (List.length
       (List.filter (fun (f : Lint.Finding.t) -> f.rule = "deep_taint")
          r.findings));
  check_int "syntactic + deep suppressions counted" 2 r.suppressed;
  (* The deep summary reflects the compiled fixture. *)
  match r.deep with
  | None -> Alcotest.fail "deep summary missing"
  | Some d ->
    check_bool "all fixture cmts loaded" true (d.cmt_files >= 6);
    check_bool "nodes collected" true (d.nodes >= 8);
    check_bool "cross-module edges found" true (d.edges >= 3)

let test_deep_determinism () =
  (* Byte-identical findings across repeated runs: same files, same
     order, same chains, same rendered bytes. *)
  let render (r : Lint.Driver.result) =
    String.concat "\n" (List.map Lint.Finding.to_json_v2 r.findings)
  in
  let a = run_fixture_deep () and b = run_fixture_deep () in
  check_str "repeated deep runs render identically" (render a) (render b)

let test_deep_only_suppression_dormant () =
  (* A nondet_domain allowance neutralises a *deep* taint source, so a
     syntactic-only run must not report it stale — it cannot tell. *)
  let src =
    "let shard () = (Domain.self () :> int) land 7\n\
     [@@lint.allow nondet_domain \"striped counter, sums commute\"]\n"
  in
  check_int "no unused_suppression from a syntactic-only run" 0
    (List.length (lint src));
  (* An allowance for a syntactic rule still rots visibly. *)
  check_bool "syntactic allowances still age" true
    (List.mem "unused_suppression"
       (rules (lint "let x = 1 [@@lint.allow output \"stale\"]\n")))

(* --- the call graph over the real lib/ tree ------------------------------- *)

let test_callgraph_structure () =
  let graph = Lint.Callgraph.build ~cmt_root:"../lib" () in
  check_bool "every lib unit loaded" true (graph.cmt_files > 50);
  check_bool "module-level bindings collected" true
    (List.length graph.nodes > 300);
  check_bool "cross-module references resolved" true (graph.edges > 500);
  check_int "no unreadable cmts" 0 (List.length graph.load_notes);
  (* Spot-check the naming scheme on known bindings. *)
  List.iter
    (fun id ->
      match Lint.Callgraph.find graph id with
      | Some _ -> ()
      | None -> Alcotest.failf "expected %s in the call graph" id)
    [ "Serve.Reactor.process"; "Obs.Metrics.incr"; "Numerics.Pool.map_chunks" ];
  check_str "wrapped names display dotted" "Serve.Reactor"
    (Lint.Callgraph.display_modname "Serve__Reactor");
  check_str "executables drop the Dune__exe prefix" "Main"
    (Lint.Callgraph.display_modname "Dune__exe__Main");
  (* Sorted node ids = deterministic traversal base. *)
  let ids = List.map (fun (n : Lint.Callgraph.node) -> n.id) graph.nodes in
  check_bool "nodes sorted by id" true (List.sort compare ids = ids)

let test_repo_deep_lints_clean () =
  (* The real gate is @lint-deep over the whole tree; this pins the
     library half: the taint, hot-path, and lock analyses all run and
     everything they flag is covered by the two documented nondet_domain
     allowances (striped metrics cells) — which neutralise sources
     without inflating the suppressed count. *)
  let result =
    Lint.Driver.run ~deep:true ~cmt_root:"../lib" ~roots:[ "../lib" ] ()
  in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Printf.eprintf "unexpected: %s\n" (Lint.Finding.to_line f))
    result.findings;
  check_int "no unsuppressed findings in lib/ under --deep" 0
    (List.length result.findings);
  check_int "still exactly the two syntactic suppressions" 2
    result.suppressed;
  match result.deep with
  | None -> Alcotest.fail "deep summary missing"
  | Some d -> check_bool "the deep pass saw the tree" true (d.nodes > 300)

(* --- clean-repo integration ----------------------------------------------- *)

let test_repo_lints_clean () =
  (* The real gate is the @lint alias over the whole tree; this pins the
     library half from inside the test sandbox: zero unsuppressed
     findings, and the two justified metrics-registry suppressions
     accounted for. *)
  (* Under [dune runtest] the cwd is [_build/default/test] and the
     (source_tree ../lib) dep puts the sources one level up; a direct
     [dune exec] from the repo root sees [lib] instead. *)
  let root = if Sys.file_exists "../lib" then "../lib" else "lib" in
  let result = Lint.Driver.run ~roots:[ root ] () in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Printf.eprintf "unexpected: %s\n" (Lint.Finding.to_line f))
    result.Lint.Driver.findings;
  check_int "no unsuppressed findings in lib/" 0
    (List.length result.Lint.Driver.findings);
  check_bool "a real tree was scanned" true
    (result.Lint.Driver.files_scanned > 100);
  check_int "exactly the two justified suppressions" 2
    result.Lint.Driver.suppressed

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "nondet_random" `Quick test_nondet_random;
          Alcotest.test_case "nondet_clock" `Quick test_nondet_clock;
          Alcotest.test_case "hashtbl_order" `Quick test_hashtbl_order;
          Alcotest.test_case "shared_state" `Quick test_shared_state;
          Alcotest.test_case "catch_all" `Quick test_catch_all;
          Alcotest.test_case "output" `Quick test_output;
          Alcotest.test_case "syntax errors" `Quick test_syntax_error;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "round-trip" `Quick test_suppression_roundtrip;
          Alcotest.test_case "hygiene" `Quick test_suppression_hygiene;
        ] );
      ( "export",
        [
          Alcotest.test_case "htlc-lint/v1 golden" `Quick test_json_golden;
          Alcotest.test_case "htlc-lint/v2 golden" `Quick test_json_v2_golden;
        ] );
      ( "deep",
        [
          Alcotest.test_case "fixture chains" `Quick test_deep_fixture_findings;
          Alcotest.test_case "determinism" `Quick test_deep_determinism;
          Alcotest.test_case "deep-only suppressions dormant" `Quick
            test_deep_only_suppression_dormant;
          Alcotest.test_case "call graph structure" `Quick
            test_callgraph_structure;
        ] );
      ( "integration",
        [
          Alcotest.test_case "repo lib/ lints clean" `Quick
            test_repo_lints_clean;
          Alcotest.test_case "repo lib/ lints clean under --deep" `Quick
            test_repo_deep_lints_clean;
        ] );
    ]
