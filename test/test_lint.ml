(* The htlc-lint rule set, driven against inline fixture sources
   (string-parsed — no tempfile I/O): each rule's positive and negative
   cases, the scoping that turns rules on/off by path, the suppression
   annotation round-trip (including the mandatory justification), the
   golden htlc-lint/v1 rendering, and a clean-repo integration check
   over the real lib/ tree. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

(* Findings for [src] attributed to [path]; default path puts the
   fixture on the strictest (lib/) scope. *)
let lint ?(path = "lib/swap/fixture.ml") src =
  fst (Lint.Driver.check_source ~path src)

let suppressed ?(path = "lib/swap/fixture.ml") src =
  snd (Lint.Driver.check_source ~path src)

let rules fs = List.map (fun (f : Lint.Finding.t) -> f.rule) fs

let severity_of rule fs =
  match
    List.find_opt (fun (f : Lint.Finding.t) -> f.rule = rule) fs
  with
  | Some f -> Lint.Finding.severity_to_string f.severity
  | None -> Alcotest.failf "no %s finding" rule

(* --- R1: nondeterminism sources ------------------------------------------ *)

let test_nondet_random () =
  let fs = lint "let f () = Random.self_init ()\nlet g n = Random.int n\n" in
  check_int "both Random uses flagged" 2 (List.length fs);
  check_bool "rule id" true
    (List.for_all (fun r -> r = "nondet_random") (rules fs));
  check_str "error severity" "error" (severity_of "nondet_random" fs);
  (* Stdlib-qualified spelling is the same rule. *)
  check_int "Stdlib.Random counts too" 1
    (List.length (lint "let g n = Stdlib.Random.int n\n"));
  (* The RNG implementation itself is the one allowed home. *)
  check_int "allowed inside Numerics.Rng" 0
    (List.length
       (lint ~path:"lib/numerics/rng.ml" "let g n = Random.int n\n"))

let test_nondet_clock () =
  let fs =
    lint
      "let a () = Unix.gettimeofday ()\n\
       let b () = Unix.time ()\n\
       let c () = Sys.time ()\n"
  in
  check_int "all three clock reads flagged" 3 (List.length fs);
  check_bool "rule id" true
    (List.for_all (fun r -> r = "nondet_clock") (rules fs));
  check_int "allowed inside Obs.Monotonic" 0
    (List.length
       (lint ~path:"lib/obs/monotonic.ml" "let a () = Unix.gettimeofday ()\n"))

let test_hashtbl_order () =
  let src = "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n" in
  check_str "error on the deterministic (lib/) paths" "error"
    (severity_of "hashtbl_order" (lint src));
  check_str "warning elsewhere" "warning"
    (severity_of "hashtbl_order" (lint ~path:"bench/helper.ml" src));
  check_int "Hashtbl.find_opt is not order-sensitive" 0
    (List.length (lint "let f t k = Hashtbl.find_opt t k\n"))

(* --- R2: domain-safety of shared state ----------------------------------- *)

let test_shared_state () =
  let unguarded = "let cache : (string, int) Hashtbl.t = Hashtbl.create 8\n" in
  check_str "unguarded toplevel Hashtbl is an error" "error"
    (severity_of "shared_state" (lint unguarded));
  check_str "unguarded toplevel ref too" "error"
    (severity_of "shared_state" (lint "let hits = ref 0\n"));
  (* A Mutex (or Atomic) anywhere in the module is the guard convention. *)
  check_int "mutex in the module counts as guarded" 0
    (List.length
       (lint
          "let lock = Mutex.create ()\n\
           let cache : (string, int) Hashtbl.t = Hashtbl.create 8\n\
           let get k = Mutex.lock lock; let r = Hashtbl.find_opt cache k in\n\
           \  Mutex.unlock lock; r\n"));
  check_int "atomics are their own guard" 0
    (List.length (lint "let count = Atomic.make 0\n"));
  (* Allocation under a function happens per call — not shared. *)
  check_int "per-call state is fine" 0
    (List.length (lint "let f () = let acc = ref 0 in incr acc; !acc\n"));
  (* Outside the Pool-reachable prefixes the rule is off. *)
  check_int "scoped to lib/" 0
    (List.length (lint ~path:"bench/helper.ml" unguarded))

(* --- R3 / R4: exception and output hygiene ------------------------------- *)

let test_catch_all () =
  let src = "let f g = try g () with _ -> 0\n" in
  check_str "catch-all in lib/ is an error" "error"
    (severity_of "catch_all" (lint src));
  check_str "a warning outside" "warning"
    (severity_of "catch_all" (lint ~path:"examples/demo.ml" src));
  check_int "named exceptions are fine" 0
    (List.length (lint "let f g = try g () with Not_found -> 0\n"))

let test_output () =
  let fs =
    lint "let f () = print_endline \"x\"\nlet g () = Printf.printf \"y\"\n"
  in
  check_int "both prints flagged" 2 (List.length fs);
  check_str "error severity" "error" (severity_of "output" fs);
  check_int "binaries own their stdout" 0
    (List.length
       (lint ~path:"bin/tool.ml" "let f () = print_endline \"x\"\n"));
  check_int "sprintf builds strings, no finding" 0
    (List.length (lint "let f x = Printf.sprintf \"%d\" x\n"))

(* --- suppressions --------------------------------------------------------- *)

let test_suppression_roundtrip () =
  (* Binding-level [@@lint.allow] with a justification: finding gone,
     counted as suppressed, nothing else emitted. *)
  let src =
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
     [@@lint.allow hashtbl_order \"result sorted by the caller\"]\n"
  in
  check_int "suppressed finding is dropped" 0 (List.length (lint src));
  check_int "and counted" 1 (suppressed src);
  (* Module-level [@@@lint.allow] covers the whole file. *)
  let src =
    "[@@@lint.allow hashtbl_order \"order-insensitive module\"]\n\
     let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
     let g t = Hashtbl.iter (fun _ _ -> ()) t\n"
  in
  check_int "module-level allowance covers both" 0 (List.length (lint src));
  check_int "both counted" 2 (suppressed src);
  (* Expression-level [@lint.allow] covers just that expression. *)
  let src =
    "let f t u =\n\
     \  let a = (Hashtbl.fold (fun k _ acc -> k :: acc) t [] [@lint.allow \
     hashtbl_order \"sorted next line\"]) in\n\
     \  let b = Hashtbl.fold (fun k _ acc -> k :: acc) u [] in\n\
     \  (List.sort compare a, b)\n"
  in
  let fs = lint src in
  check_int "only the annotated expression is excused" 1 (List.length fs);
  check_str "the other one still fires" "hashtbl_order" (List.hd fs).rule

let test_suppression_hygiene () =
  (* No justification string -> the annotation itself is an error and
     the finding it would have covered still fires. *)
  let fs =
    lint
      "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n\
       [@@lint.allow hashtbl_order]\n"
  in
  check_bool "bad_suppression emitted" true
    (List.mem "bad_suppression" (rules fs));
  check_bool "original finding survives" true
    (List.mem "hashtbl_order" (rules fs));
  (* Unknown rule names are rejected, not silently inert. *)
  check_bool "unknown rule is a bad_suppression" true
    (List.mem "bad_suppression"
       (rules (lint "let x = 1 [@@lint.allow frobnicate \"whatever\"]\n")));
  (* Blank justification is no justification. *)
  check_bool "blank justification rejected" true
    (List.mem "bad_suppression"
       (rules (lint "let x = 1 [@@lint.allow output \"  \"]\n")));
  (* An allowance that matches nothing must rot visibly. *)
  let fs = lint "let x = 1 [@@lint.allow output \"nothing to allow\"]\n" in
  check_bool "unused_suppression emitted" true
    (List.mem "unused_suppression" (rules fs));
  check_str "as a warning" "warning" (severity_of "unused_suppression" fs)

(* --- parse failures ------------------------------------------------------- *)

let test_syntax_error () =
  let fs = lint "let f = (\n" in
  check_int "one finding" 1 (List.length fs);
  check_str "syntax rule" "syntax" (List.hd fs).rule;
  check_str "error severity" "error" (severity_of "syntax" fs)

(* --- golden htlc-lint/v1 rendering ---------------------------------------- *)

let test_json_golden () =
  let result =
    {
      Lint.Driver.findings =
        [
          {
            Lint.Finding.file = "lib/a.ml";
            line = 3;
            col = 4;
            rule = "output";
            severity = Lint.Finding.Error;
            message = "say \"no\"";
          };
          {
            Lint.Finding.file = "lib/b.ml";
            line = 9;
            col = 0;
            rule = "unused_suppression";
            severity = Lint.Finding.Warning;
            message = "stale";
          };
        ];
      files_scanned = 5;
      suppressed = 1;
      wall_s = 0.25;
    }
  in
  check_str "golden document"
    ("{\"schema\":\"htlc-lint/v1\",\"type\":\"lint\",\"files_scanned\":5,"
   ^ "\"wall_s\":0.25,\"summary\":{\"errors\":1,\"warnings\":1,"
   ^ "\"suppressed\":1,\"by_rule\":{\"output\":1,\"unused_suppression\":1}},"
   ^ "\"findings\":[{\"file\":\"lib/a.ml\",\"line\":3,\"col\":4,"
   ^ "\"rule\":\"output\",\"severity\":\"error\",\"message\":\"say \\\"no\\\"\"},"
   ^ "{\"file\":\"lib/b.ml\",\"line\":9,\"col\":0,"
   ^ "\"rule\":\"unused_suppression\",\"severity\":\"warning\","
   ^ "\"message\":\"stale\"}]}")
    (Lint.Driver.render_json result);
  check_int "exit code gates on errors only" 1
    (Lint.Driver.exit_code result);
  (* The emitted document must satisfy the strict parser it will be
     validated with (round trip through Obs.Json_parse). *)
  match Obs.Json_parse.parse (Lint.Driver.render_json result) with
  | _ -> ()
  | exception Obs.Json_parse.Bad msg ->
    Alcotest.failf "render_json does not re-parse: %s" msg

(* --- clean-repo integration ----------------------------------------------- *)

let test_repo_lints_clean () =
  (* The real gate is the @lint alias over the whole tree; this pins the
     library half from inside the test sandbox: zero unsuppressed
     findings, and the two justified metrics-registry suppressions
     accounted for. *)
  (* Under [dune runtest] the cwd is [_build/default/test] and the
     (source_tree ../lib) dep puts the sources one level up; a direct
     [dune exec] from the repo root sees [lib] instead. *)
  let root = if Sys.file_exists "../lib" then "../lib" else "lib" in
  let result = Lint.Driver.run ~roots:[ root ] () in
  List.iter
    (fun (f : Lint.Finding.t) ->
      Printf.eprintf "unexpected: %s\n" (Lint.Finding.to_line f))
    result.Lint.Driver.findings;
  check_int "no unsuppressed findings in lib/" 0
    (List.length result.Lint.Driver.findings);
  check_bool "a real tree was scanned" true
    (result.Lint.Driver.files_scanned > 100);
  check_int "exactly the two justified suppressions" 2
    result.Lint.Driver.suppressed

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "nondet_random" `Quick test_nondet_random;
          Alcotest.test_case "nondet_clock" `Quick test_nondet_clock;
          Alcotest.test_case "hashtbl_order" `Quick test_hashtbl_order;
          Alcotest.test_case "shared_state" `Quick test_shared_state;
          Alcotest.test_case "catch_all" `Quick test_catch_all;
          Alcotest.test_case "output" `Quick test_output;
          Alcotest.test_case "syntax errors" `Quick test_syntax_error;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "round-trip" `Quick test_suppression_roundtrip;
          Alcotest.test_case "hygiene" `Quick test_suppression_hygiene;
        ] );
      ( "export",
        [ Alcotest.test_case "htlc-lint/v1 golden" `Quick test_json_golden ] );
      ( "integration",
        [
          Alcotest.test_case "repo lib/ lints clean" `Quick
            test_repo_lints_clean;
        ] );
    ]
