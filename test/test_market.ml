(* Tests for the market-data substrate: CSV, GBM calibration,
   regime-switching generation/classification, and the walk-forward
   backtest. *)

open Stochastic

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* --- CSV -------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let path =
    Path.create ~times:[| 1.; 2.5; 4. |] ~values:[| 2.; 2.2; 1.9 |]
  in
  match Market.Csv.parse (Market.Csv.render path) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok parsed ->
    check_float "time" 2.5 parsed.Path.times.(1);
    check_float "value" 1.9 parsed.Path.values.(2)

let test_csv_tolerates_noise () =
  let contents = "time,price\n# comment\n\n1.0, 2.0\n2.0,2.1\n" in
  match Market.Csv.parse contents with
  | Ok p -> Alcotest.(check int) "rows" 2 (Path.length p)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_csv_rejects_garbage () =
  (match Market.Csv.parse "1.0,2.0\nnot,a,row\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected field-count error");
  (match Market.Csv.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected empty error");
  match Market.Csv.parse "2.0,1.0\n1.0,2.0\n" with
  | Error _ -> () (* times must increase *)
  | Ok _ -> Alcotest.fail "expected ordering error"

let test_csv_file_io () =
  let path =
    Path.create ~times:[| 1.; 2. |] ~values:[| 3.; 4. |]
  in
  let file = Filename.temp_file "swap_test" ".csv" in
  (match Market.Csv.save file path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (match Market.Csv.load file with
  | Ok p -> check_float "loaded" 4. p.Path.values.(1)
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove file

(* --- Calibration ------------------------------------------------------------ *)

let test_calibrate_recovers_parameters () =
  let rng = Numerics.Rng.create ~seed:404 () in
  let gbm = Gbm.create ~mu:0.004 ~sigma:0.12 in
  let times = Array.init 5000 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let values = Gbm.sample_path rng gbm ~p0:2. ~times in
  let path = Path.create ~times ~values in
  match Market.Calibrate.fit path with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok fit ->
    check_float ~tol:0.005 "sigma recovered" 0.12 fit.Market.Calibrate.sigma;
    (* Drift is famously noisy; only require the right ballpark
       relative to its own standard error. *)
    if abs_float (fit.Market.Calibrate.mu -. 0.004)
       > 3. *. fit.Market.Calibrate.mu_stderr
    then
      Alcotest.failf "mu %g too far from 0.004 (se %g)" fit.Market.Calibrate.mu
        fit.Market.Calibrate.mu_stderr

let test_calibrate_irregular_sampling () =
  let rng = Numerics.Rng.create ~seed:405 () in
  let gbm = Gbm.create ~mu:0. ~sigma:0.1 in
  (* Alternating 0.5 h and 2 h gaps. *)
  let times = Array.make 3000 0. in
  let t = ref 0. in
  for i = 0 to 2999 do
    t := !t +. (if i mod 2 = 0 then 0.5 else 2.);
    times.(i) <- !t
  done;
  let values = Gbm.sample_path rng gbm ~p0:2. ~times in
  match Market.Calibrate.fit (Path.create ~times ~values) with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok fit ->
    check_float ~tol:0.01 "sigma under irregular sampling" 0.1
      fit.Market.Calibrate.sigma

let test_calibrate_window () =
  let rng = Numerics.Rng.create ~seed:406 () in
  let gbm = Gbm.create ~mu:0. ~sigma:0.1 in
  let times = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  let values = Gbm.sample_path rng gbm ~p0:2. ~times in
  let path = Path.create ~times ~values in
  match Market.Calibrate.fit_window path ~until:500. ~window:100. with
  | Error e -> Alcotest.failf "window fit failed: %s" e
  | Ok fit ->
    Alcotest.(check bool) "about 100 observations" true
      (abs (fit.Market.Calibrate.n - 100) <= 2)

let test_calibrate_rejects_bad_input () =
  (match
     Market.Calibrate.fit
       (Path.create ~times:[| 1.; 2. |] ~values:[| 1.; 2. |])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two samples must be rejected");
  match
    Market.Calibrate.fit
      (Path.create ~times:[| 1.; 2.; 3.; 4. |] ~values:[| 1.; 1.; 1.; 1. |])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "constant path must be rejected"

let test_calibrate_to_params () =
  let fit =
    match
      Market.Calibrate.fit
        (Path.create
           ~times:[| 1.; 2.; 3.; 4.; 5. |]
           ~values:[| 2.; 2.1; 2.05; 2.2; 2.1 |])
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "fit failed: %s" e
  in
  let params = Market.Calibrate.to_params fit ~spot:3.3 in
  check_float "spot becomes p0" 3.3 params.Swap.Params.p0;
  check_float "sigma transplanted" fit.Market.Calibrate.sigma
    params.Swap.Params.sigma

(* --- Regimes -------------------------------------------------------------------- *)

let test_regime_sample_shapes () =
  let rng = Numerics.Rng.create ~seed:11 () in
  let path, states =
    Market.Regimes.sample rng Market.Regimes.default_spec ~p0:2. ~dt:1.
      ~steps:500
  in
  Alcotest.(check int) "path length" 500 (Path.length path);
  Alcotest.(check int) "state per sample" 500 (Array.length states);
  Array.iter (fun v -> if v <= 0. then Alcotest.fail "nonpositive price")
    path.Path.values

let test_regime_stationary_share () =
  let share =
    Market.Regimes.stationary_turbulent_share Market.Regimes.default_spec
  in
  check_float ~tol:1e-12 "20% turbulent" 0.2 share;
  (* Long-run empirical share approaches it. *)
  let rng = Numerics.Rng.create ~seed:12 () in
  let states =
    Market.Regimes.sample_states rng Market.Regimes.default_spec ~dt:1.
      ~steps:200_000
  in
  let turbulent =
    Array.fold_left
      (fun acc s -> if s = Market.Regimes.Turbulent then acc + 1 else acc)
      0 states
  in
  check_float ~tol:0.03 "empirical share" share
    (float_of_int turbulent /. 200_000.)

let test_regime_vols_differ () =
  let rng = Numerics.Rng.create ~seed:13 () in
  let spec = Market.Regimes.default_spec in
  let path, states = Market.Regimes.sample rng spec ~p0:2. ~dt:1. ~steps:50_000 in
  let rets = Path.log_returns path in
  let calm = ref [] and turb = ref [] in
  Array.iteri
    (fun i r ->
      match states.(i + 1) with
      | Market.Regimes.Calm -> calm := r :: !calm
      | Market.Regimes.Turbulent -> turb := r :: !turb)
    rets;
  let sd xs = Numerics.Stats.stddev (Array.of_list xs) in
  check_float ~tol:0.01 "calm vol" spec.Market.Regimes.sigma_calm (sd !calm);
  check_float ~tol:0.03 "turbulent vol" spec.Market.Regimes.sigma_turbulent
    (sd !turb)

let test_regime_classification_tracks_truth () =
  let rng = Numerics.Rng.create ~seed:14 () in
  let spec = Market.Regimes.default_spec in
  let path, states = Market.Regimes.sample rng spec ~p0:2. ~dt:1. ~steps:20_000 in
  let detected =
    Market.Regimes.classify path ~window:24
      ~threshold:(0.5 *. (spec.Market.Regimes.sigma_calm +. spec.Market.Regimes.sigma_turbulent))
  in
  (* Compare detection against truth; rolling windows lag, so just
     require clearly-better-than-chance agreement. *)
  let agree = ref 0 in
  Array.iteri
    (fun i s -> if s = detected.(i) then incr agree)
    states;
  let rate = float_of_int !agree /. float_of_int (Array.length states) in
  if rate < 0.8 then Alcotest.failf "detection agreement only %.2f" rate

let test_regime_validation () =
  let bad =
    { Market.Regimes.default_spec with Market.Regimes.sigma_calm = 0.5 }
  in
  match Market.Regimes.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "turbulent < calm must be rejected"

(* --- Backtest -------------------------------------------------------------------- *)

(* The backtest is the expensive part; share one run across tests. *)
let backtest_fixture =
  lazy
    (let rng = Numerics.Rng.create ~seed:2023 () in
     let path, states =
       Market.Regimes.sample rng Market.Regimes.default_spec ~p0:2. ~dt:0.5
         ~steps:(30 * 48)
     in
     (path, states, Market.Backtest.run path))

let test_backtest_runs_and_summarises () =
  let _, _, trades = Lazy.force backtest_fixture in
  if List.length trades < 10 then
    Alcotest.failf "too few trades: %d" (List.length trades);
  let s = Market.Backtest.summarize trades in
  Alcotest.(check int) "counts are consistent" s.Market.Backtest.trades
    (s.Market.Backtest.skipped + s.Market.Backtest.initiated);
  if s.Market.Backtest.initiated > 0 then begin
    if s.Market.Backtest.realized_sr < 0. || s.Market.Backtest.realized_sr > 1.
    then Alcotest.fail "realized SR out of range"
  end

let test_backtest_trades_have_quotes () =
  let _, _, trades = Lazy.force backtest_fixture in
  List.iter
    (fun (t : Market.Backtest.trade) ->
      match (t.Market.Backtest.p_star, t.Market.Backtest.predicted_sr) with
      | Some p_star, Some sr ->
        if p_star <= 0. then Alcotest.fail "nonpositive quote";
        if sr < 0. || sr > 1. then Alcotest.fail "prediction out of range";
        if t.Market.Backtest.fitted_sigma <= 0. then
          Alcotest.fail "nonpositive fitted sigma"
      | None, None -> ()
      | _ -> Alcotest.fail "quote and prediction must come together")
    trades

let test_backtest_group_partition () =
  let _, states, trades = Lazy.force backtest_fixture in
  let groups =
    Market.Backtest.summarize_by trades ~classify:(fun t ->
        Market.Regimes.state_at states ~dt:0.5 ~t:t.Market.Backtest.start)
  in
  let total =
    List.fold_left (fun acc (_, s) -> acc + s.Market.Backtest.trades) 0 groups
  in
  Alcotest.(check int) "groups partition the trades" (List.length trades) total

(* --- Quote table ------------------------------------------------------------------ *)

let quote_table = lazy (Market.Quote_table.build Swap.Params.defaults)

let test_quote_table_matches_direct_solve () =
  let table = Lazy.force quote_table in
  List.iter
    (fun (mu, sigma) ->
      let p =
        Swap.Params.with_sigma (Swap.Params.with_mu Swap.Params.defaults mu)
          sigma
      in
      match
        (Market.Quote_table.quote table ~mu ~sigma ~spot:2.,
         Swap.Success.maximize p)
      with
      | Some q, Some direct ->
        check_float ~tol:0.02 "p_star" direct.Swap.Success.p_star
          q.Market.Quote_table.p_star;
        check_float ~tol:0.02 "sr" direct.Swap.Success.sr
          q.Market.Quote_table.sr
      | None, Some _ -> Alcotest.fail "table gap where direct solve works"
      | _, None -> ())
    [ (0.001, 0.07); (0.003, 0.11); (-0.004, 0.05) ]

let test_quote_table_scales_with_spot () =
  let table = Lazy.force quote_table in
  match
    (Market.Quote_table.quote table ~mu:0.002 ~sigma:0.1 ~spot:2.,
     Market.Quote_table.quote table ~mu:0.002 ~sigma:0.1 ~spot:6.)
  with
  | Some a, Some b ->
    check_float ~tol:1e-9 "homogeneous quote"
      (3. *. a.Market.Quote_table.p_star)
      b.Market.Quote_table.p_star;
    check_float ~tol:1e-9 "same SR" a.Market.Quote_table.sr
      b.Market.Quote_table.sr
  | _ -> Alcotest.fail "quotes expected"

let test_quote_table_outside_grid () =
  let table = Lazy.force quote_table in
  Alcotest.(check bool) "off-grid is None" true
    (Market.Quote_table.quote table ~mu:0.002 ~sigma:0.5 ~spot:2. = None)

let test_backtest_with_quote_table_agrees () =
  let _, _, slow_trades = Lazy.force backtest_fixture in
  let path, _, _ = Lazy.force backtest_fixture in
  let table = Lazy.force quote_table in
  let fast_trades = Market.Backtest.run ~quote_table:table path in
  let s = Market.Backtest.summarize slow_trades in
  let f = Market.Backtest.summarize fast_trades in
  Alcotest.(check int) "same trade count" s.Market.Backtest.trades
    f.Market.Backtest.trades;
  if abs_float (s.Market.Backtest.realized_sr -. f.Market.Backtest.realized_sr)
     > 0.1
  then Alcotest.fail "table-driven backtest must roughly agree"

let () =
  Alcotest.run "market"
    [
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "headers and comments" `Quick
            test_csv_tolerates_noise;
          Alcotest.test_case "rejects garbage" `Quick test_csv_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_csv_file_io;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "recovers GBM parameters" `Slow
            test_calibrate_recovers_parameters;
          Alcotest.test_case "irregular sampling" `Slow
            test_calibrate_irregular_sampling;
          Alcotest.test_case "trailing window" `Quick test_calibrate_window;
          Alcotest.test_case "rejects bad input" `Quick
            test_calibrate_rejects_bad_input;
          Alcotest.test_case "to_params" `Quick test_calibrate_to_params;
        ] );
      ( "regimes",
        [
          Alcotest.test_case "sample shapes" `Quick test_regime_sample_shapes;
          Alcotest.test_case "stationary share" `Slow
            test_regime_stationary_share;
          Alcotest.test_case "per-regime volatilities" `Slow
            test_regime_vols_differ;
          Alcotest.test_case "classification tracks truth" `Slow
            test_regime_classification_tracks_truth;
          Alcotest.test_case "validation" `Quick test_regime_validation;
        ] );
      ( "quote_table",
        [
          Alcotest.test_case "matches direct solve" `Slow
            test_quote_table_matches_direct_solve;
          Alcotest.test_case "homogeneous in the spot" `Slow
            test_quote_table_scales_with_spot;
          Alcotest.test_case "off-grid is None" `Slow
            test_quote_table_outside_grid;
          Alcotest.test_case "backtest agreement" `Slow
            test_backtest_with_quote_table_agrees;
        ] );
      ( "backtest",
        [
          Alcotest.test_case "runs and summarises" `Slow
            test_backtest_runs_and_summarises;
          Alcotest.test_case "quotes are sane" `Slow
            test_backtest_trades_have_quotes;
          Alcotest.test_case "grouping partitions" `Slow
            test_backtest_group_partition;
        ] );
    ]
