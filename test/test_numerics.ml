(* Tests for the numerics substrate: special functions, distributions,
   quadrature, root finding, RNG and statistics. *)

open Numerics

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* --- Special functions ------------------------------------------------ *)

(* Reference values computed with mpmath at 50 digits. *)
let erf_reference =
  [ (0.0, 0.0);
    (0.1, 0.1124629160182848922);
    (0.5, 0.5204998778130465377);
    (1.0, 0.8427007929497148693);
    (2.0, 0.9953222650189527342);
    (3.0, 0.9999779095030014146) ]

let erfc_reference =
  [ (0.5, 0.4795001221869534623);
    (1.0, 0.1572992070502851307);
    (2.0, 0.004677734981047265);
    (4.0, 1.541725790028002e-8);
    (6.0, 2.1519736712498913e-17) ]

let test_erf () =
  List.iter
    (fun (x, y) ->
      check_float ~tol:1e-12 (Printf.sprintf "erf %g" x) y (Special.erf x);
      check_float ~tol:1e-12
        (Printf.sprintf "erf (-%g)" x)
        (-.y)
        (Special.erf (-.x)))
    erf_reference

let test_erfc () =
  List.iter
    (fun (x, y) ->
      let rel = abs_float ((Special.erfc x -. y) /. y) in
      if rel > 1e-10 then
        Alcotest.failf "erfc %g: rel error %g (got %.17g, want %.17g)" x rel
          (Special.erfc x) y)
    erfc_reference

let test_erfc_symmetry () =
  List.iter
    (fun x ->
      check_float ~tol:1e-12
        (Printf.sprintf "erfc(-x) = 2 - erfc(x) at %g" x)
        (2. -. Special.erfc x)
        (Special.erfc (-.x)))
    [ 0.1; 0.7; 1.3; 2.5 ]

let test_erfc_inv () =
  List.iter
    (fun x ->
      let y = Special.erfc x in
      if y > 0. && y < 2. then
        check_float ~tol:1e-10
          (Printf.sprintf "erfc_inv (erfc %g)" x)
          x
          (Special.erfc_inv y))
    [ -2.0; -1.0; -0.3; 0.0; 0.2; 0.9; 1.7; 3.0; 4.5 ]

let test_log_gamma () =
  (* Gamma(n) = (n-1)! *)
  check_float ~tol:1e-12 "log_gamma 1" 0. (Special.log_gamma 1.);
  check_float ~tol:1e-12 "log_gamma 2" 0. (Special.log_gamma 2.);
  check_float ~tol:1e-10 "log_gamma 5" (log 24.) (Special.log_gamma 5.);
  check_float ~tol:1e-10 "log_gamma 0.5" (log (sqrt Special.pi))
    (Special.log_gamma 0.5);
  check_float ~tol:1e-9 "log_gamma 10.3" 13.48203678613836
    (Special.log_gamma 10.3)

let test_gamma_p_q () =
  (* P(a,x) + Q(a,x) = 1 *)
  List.iter
    (fun (a, x) ->
      check_float ~tol:1e-12
        (Printf.sprintf "P+Q=1 at a=%g x=%g" a x)
        1.
        (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.1); (0.5, 3.); (2., 1.); (5., 10.); (10., 3.) ];
  (* P(1, x) = 1 - exp(-x) *)
  List.iter
    (fun x ->
      check_float ~tol:1e-12
        (Printf.sprintf "P(1,%g)" x)
        (1. -. exp (-.x))
        (Special.gamma_p 1. x))
    [ 0.2; 1.; 4. ]

(* --- Normal distribution ---------------------------------------------- *)

let test_normal_cdf () =
  check_float ~tol:1e-12 "cdf 0" 0.5 (Normal.cdf 0.);
  check_float ~tol:1e-10 "cdf 1.96" 0.9750021048517795 (Normal.cdf 1.96);
  check_float ~tol:1e-10 "cdf -1.96" 0.0249978951482205 (Normal.cdf (-1.96));
  check_float ~tol:1e-12 "sf symmetry" (Normal.cdf (-1.3)) (Normal.sf 1.3);
  check_float ~tol:1e-10 "general cdf"
    (Normal.cdf 1.5)
    (Normal.cdf ~mean:10. ~stddev:2. 13.)

let test_normal_quantile () =
  List.iter
    (fun p ->
      check_float ~tol:1e-9
        (Printf.sprintf "cdf (quantile %g)" p)
        p
        (Normal.cdf (Normal.quantile p)))
    [ 1e-8; 0.001; 0.025; 0.3; 0.5; 0.8; 0.975; 0.999; 1. -. 1e-8 ]

let test_normal_pdf_integrates () =
  let integral =
    Integrate.adaptive_simpson ~tol:1e-12 (fun x -> Normal.pdf x) ~a:(-8.)
      ~b:8.
  in
  check_float ~tol:1e-9 "pdf integrates to 1" 1. integral

(* --- Lognormal --------------------------------------------------------- *)

let test_lognormal_moments () =
  let d = Lognormal.create ~mu:0.3 ~sigma:0.4 in
  check_float ~tol:1e-12 "mean" (exp (0.3 +. (0.5 *. 0.16))) (Lognormal.mean d);
  check_float ~tol:1e-12 "median" (exp 0.3) (Lognormal.median d);
  (* Mean as an integral of x * pdf *)
  let by_quadrature =
    Integrate.semi_infinite ~n:400 (fun x -> x *. Lognormal.pdf d x) ~a:0.
  in
  check_float ~tol:1e-6 "mean by quadrature" (Lognormal.mean d) by_quadrature

let test_lognormal_partial_expectations () =
  let d = Lognormal.create ~mu:0.1 ~sigma:0.5 in
  List.iter
    (fun k ->
      let above =
        Integrate.semi_infinite ~n:600 (fun x -> x *. Lognormal.pdf d x) ~a:k
      in
      check_float ~tol:1e-6
        (Printf.sprintf "E[X 1(X>%g)]" k)
        above
        (Lognormal.partial_expectation_above d k);
      check_float ~tol:1e-6 "below + above = mean" (Lognormal.mean d)
        (Lognormal.partial_expectation_above d k
        +. Lognormal.partial_expectation_below d k))
    [ 0.5; 1.0; 1.5; 3.0 ]

let test_lognormal_cdf_pdf_consistency () =
  let d = Lognormal.create ~mu:(-0.2) ~sigma:0.3 in
  List.iter
    (fun k ->
      let cdf_by_quadrature =
        Integrate.adaptive_simpson ~tol:1e-12 (Lognormal.pdf d) ~a:1e-12 ~b:k
      in
      check_float ~tol:1e-8
        (Printf.sprintf "cdf %g" k)
        cdf_by_quadrature (Lognormal.cdf d k))
    [ 0.5; 0.8; 1.2; 2.0 ]

(* --- Quadrature --------------------------------------------------------- *)

let test_simpson_polynomial () =
  (* Simpson is exact for cubics. *)
  let f x = (2. *. x *. x *. x) -. (x *. x) +. 3. in
  let exact = (0.5 *. 16.) -. (8. /. 3.) +. 6. in
  check_float ~tol:1e-12 "simpson cubic" exact (Integrate.simpson ~n:2 f ~a:0. ~b:2.)

let test_gauss_legendre_exactness () =
  (* n nodes integrate degree 2n-1 exactly. *)
  let f x = (x ** 9.) +. (4. *. (x ** 5.)) -. x in
  let exact = (1. /. 10. *. (2. ** 10. -. 1.)) +. (4. /. 6. *. (2. ** 6. -. 1.)) -. 1.5 in
  check_float ~tol:1e-9 "GL degree 9 with n=5" exact
    (Integrate.gauss_legendre ~n:5 f ~a:1. ~b:2.)

let test_adaptive_simpson_hard () =
  (* A peaked integrand. *)
  let f x = exp (-100. *. (x -. 0.5) ** 2.) in
  let exact = sqrt (Special.pi /. 100.) in
  check_float ~tol:1e-8 "adaptive peak" exact
    (Integrate.adaptive_simpson ~tol:1e-12 f ~a:(-5.) ~b:5.)

let test_semi_infinite () =
  check_float ~tol:1e-8 "int exp(-x)" 1.
    (Integrate.semi_infinite ~n:200 (fun x -> exp (-.x)) ~a:0.);
  check_float ~tol:1e-7 "int exp(-x) from 2" (exp (-2.))
    (Integrate.semi_infinite ~n:200 (fun x -> exp (-.x)) ~a:2.)

let test_gl_nodes_weights_sum () =
  List.iter
    (fun n ->
      let nodes = Integrate.gauss_legendre_nodes n in
      let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. nodes in
      check_float ~tol:1e-12 (Printf.sprintf "weights sum n=%d" n) 2. total)
    [ 2; 8; 32; 64; 101 ]

(* --- Root finding ------------------------------------------------------- *)

let test_bisect_brent () =
  let f x = (x *. x) -. 2. in
  check_float ~tol:1e-10 "bisect sqrt2" (sqrt 2.) (Root.bisect f ~a:0. ~b:2.);
  check_float ~tol:1e-10 "brent sqrt2" (sqrt 2.) (Root.brent f ~a:0. ~b:2.);
  check_float ~tol:1e-10 "brent cos" (Special.pi /. 2.)
    (Root.brent cos ~a:1. ~b:2.)

let test_newton () =
  let f x = (x *. x *. x) -. 8. in
  let df x = 3. *. x *. x in
  check_float ~tol:1e-10 "newton cbrt8" 2. (Root.newton ~f ~df 3.)

let test_find_all_roots () =
  (* sin has roots at pi and 2 pi inside (1, 7). *)
  let roots = Root.find_all_roots ~n:100 sin ~a:1. ~b:7. in
  (match roots with
  | [ r1; r2 ] ->
    check_float ~tol:1e-9 "root pi" Special.pi r1;
    check_float ~tol:1e-9 "root 2pi" (2. *. Special.pi) r2
  | other -> Alcotest.failf "expected 2 roots, got %d" (List.length other));
  (* A cubic with 3 roots. *)
  let f x = (x -. 1.) *. (x -. 2.) *. (x -. 3.) in
  let roots = Root.find_all_roots ~n:300 f ~a:0. ~b:4. in
  Alcotest.(check int) "3 roots" 3 (List.length roots)

let test_find_all_roots_log () =
  let f x = log x in
  match Root.find_all_roots_log ~n:200 f ~a:0.01 ~b:100. with
  | [ r ] -> check_float ~tol:1e-9 "log root at 1" 1. r
  | other -> Alcotest.failf "expected 1 root, got %d" (List.length other)

let test_brent_no_bracket () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Root.brent: endpoints do not bracket a root")
    (fun () -> ignore (Root.brent (fun x -> (x *. x) +. 1.) ~a:(-1.) ~b:1.))

(* --- RNG ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let r1 = Rng.create ~seed:42 () in
  let r2 = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.uniform r1) (Rng.uniform r2)
  done

let test_rng_uniform_range () =
  let r = Rng.create ~seed:7 () in
  for _ = 1 to 1000 do
    let u = Rng.uniform r in
    if u < 0. || u >= 1. then Alcotest.failf "uniform out of range: %g" u
  done

let test_rng_uniform_moments () =
  let r = Rng.create ~seed:11 () in
  let xs = Array.init 100_000 (fun _ -> Rng.uniform r) in
  let s = Stats.summarize xs in
  check_float ~tol:5e-3 "mean ~ 0.5" 0.5 s.Stats.mean;
  check_float ~tol:5e-3 "var ~ 1/12" (1. /. 12.) s.Stats.variance

let test_rng_normal_moments () =
  let r = Rng.create ~seed:13 () in
  let xs = Array.init 100_000 (fun _ -> Rng.normal r) in
  let s = Stats.summarize xs in
  check_float ~tol:2e-2 "mean ~ 0" 0. s.Stats.mean;
  check_float ~tol:2e-2 "stddev ~ 1" 1. s.Stats.stddev

let test_rng_normal_tails () =
  let r = Rng.create ~seed:17 () in
  let n = 200_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.normal r > 1.6449 then incr count
  done;
  (* P(Z > 1.6449) = 5% *)
  let p = float_of_int !count /. float_of_int n in
  check_float ~tol:4e-3 "upper 5% tail" 0.05 p

let test_rng_int_below () =
  let r = Rng.create ~seed:19 () in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Rng.int_below r 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_200 || c > 10_800 then
        Alcotest.failf "bucket %d count %d far from 10000" i c)
    counts

let test_rng_split_independent () =
  let r = Rng.create ~seed:23 () in
  let child = Rng.split r in
  let a = Array.init 1000 (fun _ -> Rng.uniform r) in
  let b = Array.init 1000 (fun _ -> Rng.uniform child) in
  (* Streams should differ. *)
  if Array.for_all2 (fun x y -> x = y) a b then
    Alcotest.fail "split stream identical to parent"

let test_rng_exponential () =
  let r = Rng.create ~seed:29 () in
  let xs = Array.init 100_000 (fun _ -> Rng.exponential r ~rate:2.) in
  let s = Stats.summarize xs in
  check_float ~tol:1e-2 "mean 1/rate" 0.5 s.Stats.mean

(* --- Stats ---------------------------------------------------------------- *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float ~tol:1e-12 "mean" 3. (Stats.mean xs);
  check_float ~tol:1e-12 "variance" 2.5 (Stats.variance xs);
  let s = Stats.summarize xs in
  check_float ~tol:1e-12 "min" 1. s.Stats.min;
  check_float ~tol:1e-12 "max" 5. s.Stats.max;
  Alcotest.(check int) "n" 5 s.Stats.n

let test_stats_quantile () =
  let xs = [| 3.; 1.; 2.; 4. |] in
  check_float ~tol:1e-12 "q0" 1. (Stats.quantile xs 0.);
  check_float ~tol:1e-12 "q1" 4. (Stats.quantile xs 1.);
  check_float ~tol:1e-12 "median" 2.5 (Stats.quantile xs 0.5)

let test_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  if lo >= 0.5 || hi <= 0.5 then Alcotest.fail "wilson must contain p-hat";
  if lo < 0.39 || hi > 0.61 then
    Alcotest.failf "wilson interval too wide: (%g, %g)" lo hi;
  (* Degenerate cases stay within [0,1]. *)
  let lo0, _ = Stats.wilson_interval ~successes:0 ~trials:10 ~z:1.96 in
  let _, hi1 = Stats.wilson_interval ~successes:10 ~trials:10 ~z:1.96 in
  if lo0 < 0. then Alcotest.fail "wilson lower < 0";
  if hi1 > 1. then Alcotest.fail "wilson upper > 1"

let test_histogram () =
  let xs = [| 0.1; 0.2; 0.55; 0.9; 1.5; -0.3 |] in
  let h = Stats.histogram xs ~bins:2 ~lo:0. ~hi:1. in
  Alcotest.(check (array int)) "histogram" [| 3; 3 |] h

let test_grid () =
  let xs = Grid.linspace ~lo:0. ~hi:1. ~n:5 in
  Alcotest.(check int) "linspace length" 5 (Array.length xs);
  check_float ~tol:1e-12 "linspace mid" 0.5 xs.(2);
  let ys = Grid.logspace ~lo:1. ~hi:100. ~n:3 in
  check_float ~tol:1e-9 "logspace mid" 10. ys.(1);
  let zs = Grid.arange ~lo:0. ~hi:1. ~step:0.25 in
  Alcotest.(check int) "arange length" 4 (Array.length zs)

(* --- Minimisation --------------------------------------------------------------- *)

let test_golden_section_quadratic () =
  let f x = ((x -. 1.3) ** 2.) +. 0.7 in
  let x, v = Minimize.golden_section f ~a:(-10.) ~b:10. in
  check_float ~tol:1e-6 "argmin" 1.3 x;
  check_float ~tol:1e-9 "min" 0.7 v

let test_maximize_concave () =
  let f x = -.((x -. 2.) ** 2.) +. 5. in
  let x, v = Minimize.maximize f ~a:0. ~b:4. in
  check_float ~tol:1e-6 "argmax" 2. x;
  check_float ~tol:1e-9 "max" 5. v

let test_grid_then_golden_multimodal () =
  (* Two humps; the global one is at x ~ 4. *)
  let f x = exp (-.((x -. 1.) ** 2.)) +. (1.5 *. exp (-.((x -. 4.) ** 2.))) in
  let x, _ = Minimize.grid_then_golden ~grid:60 f ~a:(-1.) ~b:6. in
  check_float ~tol:1e-3 "finds the global hump" 4. x

let test_minimize_validation () =
  match Minimize.golden_section (fun x -> x) ~a:1. ~b:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "reversed bounds must be rejected"

(* --- Interpolation ----------------------------------------------------------- *)

let test_spline_interpolates_knots () =
  let xs = [| 0.; 1.; 2.5; 4.; 5. |] in
  let ys = Array.map (fun x -> sin x) xs in
  let s = Interp.Cubic_spline.create ~xs ~ys in
  Array.iteri
    (fun i x ->
      check_float ~tol:1e-12 (Printf.sprintf "knot %d" i) ys.(i)
        (Interp.Cubic_spline.eval s x))
    xs

let test_spline_accuracy_on_smooth_function () =
  let xs = Grid.linspace ~lo:0. ~hi:6.28 ~n:30 in
  let ys = Array.map sin xs in
  let s = Interp.Cubic_spline.create ~xs ~ys in
  Array.iter
    (fun x ->
      if abs_float (Interp.Cubic_spline.eval s x -. sin x) > 1e-4 then
        Alcotest.failf "spline error too large at %g" x)
    (Grid.linspace ~lo:0.1 ~hi:6.2 ~n:100)

let test_spline_reproduces_lines_exactly () =
  let xs = [| 0.; 1.; 3.; 7. |] in
  let ys = Array.map (fun x -> (2. *. x) -. 1.) xs in
  let s = Interp.Cubic_spline.create ~xs ~ys in
  List.iter
    (fun x ->
      check_float ~tol:1e-10 (Printf.sprintf "line at %g" x)
        ((2. *. x) -. 1.)
        (Interp.Cubic_spline.eval s x);
      check_float ~tol:1e-8 "slope" 2. (Interp.Cubic_spline.eval_deriv s x))
    [ 0.5; 2.; 5.; -1.; 9. ]

let test_spline_validation () =
  (match Interp.Cubic_spline.create ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "two knots must be rejected");
  match Interp.Cubic_spline.create ~xs:[| 0.; 1.; 1. |] ~ys:[| 0.; 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing knots must be rejected"

let test_bilinear_exact_on_planes () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 2. |] in
  let f x y = (3. *. x) -. y +. 0.5 in
  let values = Array.map (fun x -> Array.map (fun y -> f x y) ys) xs in
  let b = Interp.Bilinear.create ~xs ~ys ~values in
  List.iter
    (fun (x, y) ->
      match Interp.Bilinear.eval b ~x ~y with
      | Some v -> check_float ~tol:1e-12 "planar" (f x y) v
      | None -> Alcotest.fail "inside the grid")
    [ (0.5, 1.); (1.7, 0.3); (0., 0.); (2., 2.) ]

let test_bilinear_gaps_and_hull () =
  let values = [| [| 1.; nan |]; [| 3.; 4. |] |] in
  let b = Interp.Bilinear.create ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |] ~values in
  Alcotest.(check (option (float 0.))) "nan corner blocks" None
    (Interp.Bilinear.eval b ~x:0.5 ~y:0.5);
  Alcotest.(check (option (float 0.))) "outside hull" None
    (Interp.Bilinear.eval b ~x:1.5 ~y:0.5)

(* --- Property-based tests -------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"erf is odd" ~count:300
      (float_bound_exclusive 5.)
      (fun x -> abs_float (Special.erf (-.x) +. Special.erf x) < 1e-12);
    Test.make ~name:"erfc in [0,2]" ~count:300
      (float_range (-10.) 10.)
      (fun x ->
        let y = Special.erfc x in
        y >= 0. && y <= 2.);
    Test.make ~name:"normal cdf monotone" ~count:300
      (pair (float_range (-6.) 6.) (float_range (-6.) 6.))
      (fun (a, b) ->
        let a, b = if a <= b then (a, b) else (b, a) in
        Normal.cdf a <= Normal.cdf b +. 1e-15);
    Test.make ~name:"normal quantile inverts cdf" ~count:200
      (float_range (-4.) 4.)
      (fun x -> abs_float (Normal.quantile (Normal.cdf x) -. x) < 1e-7);
    Test.make ~name:"lognormal cdf+sf = 1" ~count:300
      (pair (float_range (-1.) 1.) (float_range 0.05 2.))
      (fun (mu, sigma) ->
        let d = Lognormal.create ~mu ~sigma in
        let x = exp mu in
        abs_float (Lognormal.cdf d x +. Lognormal.sf d x -. 1.) < 1e-12);
    Test.make ~name:"partial expectations sum to mean" ~count:300
      (triple (float_range (-1.) 1.) (float_range 0.05 1.5) (float_range 0.01 10.))
      (fun (mu, sigma, k) ->
        let d = Lognormal.create ~mu ~sigma in
        abs_float
          (Lognormal.partial_expectation_above d k
          +. Lognormal.partial_expectation_below d k
          -. Lognormal.mean d)
        < 1e-9 *. Lognormal.mean d);
    Test.make ~name:"brent finds bracketed root" ~count:200
      (pair (float_range (-3.) (-0.01)) (float_range 0.01 3.))
      (fun (a, b) ->
        let f x = x in
        abs_float (Root.brent f ~a ~b) < 1e-9);
    Test.make ~name:"quantile between min and max" ~count:200
      (pair (list_of_size (Gen.int_range 1 40) (float_range (-100.) 100.))
         (float_range 0. 1.))
      (fun (xs, p) ->
        match xs with
        | [] -> true
        | _ ->
          let arr = Array.of_list xs in
          let q = Stats.quantile arr p in
          let s = Stats.summarize arr in
          q >= s.Stats.min -. 1e-9 && q <= s.Stats.max +. 1e-9);
    Test.make ~name:"wilson contains point estimate" ~count:200
      (pair (int_range 0 50) (int_range 1 50))
      (fun (s, extra) ->
        let trials = s + extra in
        let lo, hi = Stats.wilson_interval ~successes:s ~trials ~z:1.96 in
        let p = float_of_int s /. float_of_int trials in
        lo <= p +. 1e-12 && hi >= p -. 1e-12);
    Test.make ~name:"gauss_legendre matches simpson on smooth f" ~count:100
      (pair (float_range (-2.) 2.) (float_range 0.1 3.))
      (fun (a, len) ->
        let b = a +. len in
        let f x = sin (2. *. x) +. (0.3 *. x *. x) in
        let gl = Integrate.gauss_legendre ~n:32 f ~a ~b in
        let si = Integrate.adaptive_simpson ~tol:1e-12 f ~a ~b in
        abs_float (gl -. si) < 1e-8);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "numerics"
    [
      ( "special",
        [
          Alcotest.test_case "erf reference values" `Quick test_erf;
          Alcotest.test_case "erfc reference values" `Quick test_erfc;
          Alcotest.test_case "erfc symmetry" `Quick test_erfc_symmetry;
          Alcotest.test_case "erfc_inv round trip" `Quick test_erfc_inv;
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "incomplete gamma" `Quick test_gamma_p_q;
        ] );
      ( "normal",
        [
          Alcotest.test_case "cdf values" `Quick test_normal_cdf;
          Alcotest.test_case "quantile inverts cdf" `Quick test_normal_quantile;
          Alcotest.test_case "pdf integrates to 1" `Quick
            test_normal_pdf_integrates;
        ] );
      ( "lognormal",
        [
          Alcotest.test_case "moments" `Quick test_lognormal_moments;
          Alcotest.test_case "partial expectations" `Quick
            test_lognormal_partial_expectations;
          Alcotest.test_case "cdf/pdf consistency" `Quick
            test_lognormal_cdf_pdf_consistency;
        ] );
      ( "integrate",
        [
          Alcotest.test_case "simpson exact on cubic" `Quick
            test_simpson_polynomial;
          Alcotest.test_case "gauss-legendre exactness" `Quick
            test_gauss_legendre_exactness;
          Alcotest.test_case "adaptive simpson peak" `Quick
            test_adaptive_simpson_hard;
          Alcotest.test_case "semi-infinite" `Quick test_semi_infinite;
          Alcotest.test_case "GL weights sum to 2" `Quick
            test_gl_nodes_weights_sum;
        ] );
      ( "root",
        [
          Alcotest.test_case "bisect and brent" `Quick test_bisect_brent;
          Alcotest.test_case "newton" `Quick test_newton;
          Alcotest.test_case "find_all_roots" `Quick test_find_all_roots;
          Alcotest.test_case "find_all_roots_log" `Quick
            test_find_all_roots_log;
          Alcotest.test_case "brent rejects non-bracket" `Quick
            test_brent_no_bracket;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform moments" `Quick test_rng_uniform_moments;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "normal tails" `Quick test_rng_normal_tails;
          Alcotest.test_case "int_below uniformity" `Quick test_rng_int_below;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "grids" `Quick test_grid;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "golden section quadratic" `Quick
            test_golden_section_quadratic;
          Alcotest.test_case "maximize concave" `Quick test_maximize_concave;
          Alcotest.test_case "grid+golden multimodal" `Quick
            test_grid_then_golden_multimodal;
          Alcotest.test_case "validation" `Quick test_minimize_validation;
        ] );
      ( "interp",
        [
          Alcotest.test_case "spline hits knots" `Quick
            test_spline_interpolates_knots;
          Alcotest.test_case "spline accuracy" `Quick
            test_spline_accuracy_on_smooth_function;
          Alcotest.test_case "spline reproduces lines" `Quick
            test_spline_reproduces_lines_exactly;
          Alcotest.test_case "spline validation" `Quick test_spline_validation;
          Alcotest.test_case "bilinear exact on planes" `Quick
            test_bilinear_exact_on_planes;
          Alcotest.test_case "bilinear gaps and hull" `Quick
            test_bilinear_gaps_and_hull;
        ] );
      ("properties", props);
    ]
