(* Observability layer: metrics registry correctness (including under
   pool fan-out), trace/sink export shapes, cutoff-cache eviction, pool
   stats, HTLC_JOBS validation, and the determinism guard showing that
   instrumentation never perturbs Monte-Carlo results. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- metrics registry --------------------------------------------------- *)

let test_counter_basics () =
  let c = Obs.Metrics.counter "test.counter_basics" in
  Obs.Metrics.reset_counter c;
  check_int "starts at zero" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  check_int "incr + add" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.counter_basics" in
  Obs.Metrics.incr c';
  check_int "registration is idempotent (same cells)" 43
    (Obs.Metrics.counter_value c);
  (match Obs.Metrics.gauge "test.counter_basics" with
  | _ -> Alcotest.fail "re-registering a counter as a gauge must fail"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.reset_counter c

let test_enabled_gating () =
  let c = Obs.Metrics.counter "test.enabled_gating" in
  Obs.Metrics.reset_counter c;
  Obs.Metrics.set_enabled false;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.set_enabled true;
  check_int "updates are no-ops while disabled" 0
    (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_int "updates resume when re-enabled" 1 (Obs.Metrics.counter_value c);
  Obs.Metrics.reset_counter c

let test_gauge_max () =
  let g = Obs.Metrics.gauge "test.gauge_max" in
  Obs.Metrics.set_gauge g 0.;
  Obs.Metrics.max_gauge g 3.;
  Obs.Metrics.max_gauge g 1.;
  check (Alcotest.float 0.) "max keeps the high-water mark" 3.
    (Obs.Metrics.gauge_value g)

let test_histogram_buckets () =
  let h = Obs.Metrics.histogram "test.histogram_buckets" in
  (* 1.0 lands in the (1, 2] bucket (upper bound 2), 0.75 in (0.5, 1]. *)
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 0.75;
  Obs.Metrics.observe h 0.75;
  let s = Obs.Metrics.hist_value h in
  check_int "count" 3 s.Obs.Metrics.count;
  check (Alcotest.float 1e-12) "sum" 2.5 s.Obs.Metrics.sum;
  check_bool "bucket upper bounds are powers of two" true
    (List.mem (2., 1) s.Obs.Metrics.buckets
    && List.mem (1., 2) s.Obs.Metrics.buckets)

let test_parallel_counters () =
  let c = Obs.Metrics.counter "test.parallel_counters" in
  let h = Obs.Metrics.histogram "test.parallel_hist" in
  Obs.Metrics.reset_counter c;
  let before = (Obs.Metrics.hist_value h).Obs.Metrics.count in
  Numerics.Pool.run_chunks ~jobs:4 ~chunks:1000 (fun chunk ->
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (float_of_int (chunk + 1) *. 1e-6));
  check_int "no lost counter updates under fan-out" 1000
    (Obs.Metrics.counter_value c);
  check_int "no lost histogram updates under fan-out" 1000
    ((Obs.Metrics.hist_value h).Obs.Metrics.count - before);
  Obs.Metrics.reset_counter c

let test_snapshot_and_json () =
  let c = Obs.Metrics.counter "test.snapshot_counter" in
  Obs.Metrics.reset_counter c;
  Obs.Metrics.incr c;
  let s = Obs.Metrics.snapshot () in
  check_bool "snapshot carries the counter" true
    (List.mem_assoc "test.snapshot_counter" s.Obs.Metrics.counters);
  let json = Obs.Metrics.to_json s in
  check_bool "schema tag present" true
    (String.length json > 40
    && String.sub json 0 36 = "{\"schema\":\"htlc-obs/v1\",\"type\":\"metr");
  let prom = Obs.Metrics.to_prometheus s in
  check_bool "prometheus export mentions the counter" true
    (let needle = "test_snapshot_counter 1" in
     let n = String.length needle in
     let found = ref false in
     for i = 0 to String.length prom - n do
       if String.sub prom i n = needle then found := true
     done;
     !found);
  Obs.Metrics.reset_counter c

(* --- tracing ------------------------------------------------------------ *)

let test_trace_nesting_and_shape () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Obs.Trace.with_span "outer" (fun outer ->
      Obs.Trace.annotate outer "k" "v";
      Obs.Trace.with_span "inner" (fun _ -> ()));
  Obs.Trace.set_enabled false;
  let spans = Obs.Trace.spans () in
  check_int "two spans recorded" 2 (List.length spans);
  (* Inner finishes first (ring is finish-ordered). *)
  let inner = List.nth spans 0 and outer = List.nth spans 1 in
  check Alcotest.string "inner name" "inner" inner.Obs.Trace.f_name;
  check Alcotest.string "outer name" "outer" outer.Obs.Trace.f_name;
  check
    (Alcotest.option Alcotest.int)
    "implicit parent"
    (Some outer.Obs.Trace.f_id)
    inner.Obs.Trace.f_parent;
  check_bool "durations are non-negative" true
    (Int64.compare inner.Obs.Trace.f_stop_ns inner.Obs.Trace.f_start_ns >= 0);
  let line = Obs.Trace.to_jsonl outer in
  check_bool "span JSONL golden shape" true
    (String.sub line 0 30 = "{\"schema\":\"htlc-obs/v1\",\"type\""
    && String.length line > 0
    && line.[String.length line - 1] = '}');
  let contains s needle =
    let n = String.length needle in
    let found = ref false in
    for i = 0 to String.length s - n do
      if String.sub s i n = needle then found := true
    done;
    !found
  in
  check_bool "span carries name + annotations" true
    (contains line "\"name\":\"outer\""
    && contains line "\"annotations\":{\"k\":\"v\"}"
    && contains line "\"parent\":null");
  Obs.Trace.clear ()

let test_trace_disabled_is_free () =
  Obs.Trace.clear ();
  check_bool "disabled by default in tests" false (Obs.Trace.enabled ());
  Obs.Trace.with_span "ghost" (fun s -> Obs.Trace.annotate s "a" "b");
  check_int "no spans recorded while disabled" 0
    (List.length (Obs.Trace.spans ()))

let test_trace_ring_bound () =
  Obs.Trace.clear ();
  Obs.Trace.set_capacity 8;
  Obs.Trace.set_enabled true;
  for i = 0 to 19 do
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun _ -> ())
  done;
  Obs.Trace.set_enabled false;
  let spans = Obs.Trace.spans () in
  check_int "ring keeps only the newest spans" 8 (List.length spans);
  check Alcotest.string "oldest retained span" "s12"
    (List.hd spans).Obs.Trace.f_name;
  check_int "overwrites are counted exactly" 12 (Obs.Trace.dropped ());
  check_bool "registry counter mirrors the drops" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "trace.dropped") >= 12);
  Obs.Trace.set_capacity 4096;
  check_int "set_capacity resets the exact count" 0 (Obs.Trace.dropped ())

let test_trace_emit_bypasses_gate () =
  Obs.Trace.clear ();
  check_bool "ambient tracing off" false (Obs.Trace.enabled ());
  let id =
    Obs.Trace.emit ~name:"sampled" ~start_ns:10L ~stop_ns:35L
      ~annotations:[ ("k", "v") ] ()
  in
  (match Obs.Trace.spans () with
  | [ f ] ->
    check_int "allocated id is echoed" id f.Obs.Trace.f_id;
    check Alcotest.string "name" "sampled" f.Obs.Trace.f_name;
    check_bool "timestamps are caller-supplied" true
      (f.Obs.Trace.f_start_ns = 10L && f.Obs.Trace.f_stop_ns = 35L);
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
      "annotations kept in order"
      [ ("k", "v") ]
      f.Obs.Trace.f_annotations
  | spans ->
    Alcotest.failf "expected 1 emitted span, got %d" (List.length spans));
  Obs.Trace.clear ()

(* --- exact-quantile reservoir -------------------------------------------- *)

let test_quantile_exact () =
  let q = Obs.Quantile.create ~capacity:4096 "test.quantile_exact" in
  (* Insertion order must not matter: record descending. *)
  for i = 100 downto 1 do
    Obs.Quantile.record q (float_of_int i)
  done;
  check_int "count" 100 (Obs.Quantile.count q);
  let s = Obs.Quantile.summary q in
  check_int "window retains everything" 100 s.Obs.Quantile.s_count;
  check (Alcotest.float 0.) "p50 nearest-rank" 50. s.Obs.Quantile.s_p50;
  check (Alcotest.float 0.) "p90" 90. s.Obs.Quantile.s_p90;
  check (Alcotest.float 0.) "p99" 99. s.Obs.Quantile.s_p99;
  check (Alcotest.float 0.) "p999 is the max" 100. s.Obs.Quantile.s_p999;
  check (Alcotest.float 0.) "low quantile" 1. (Obs.Quantile.quantile q 0.001);
  Obs.Quantile.reset q;
  check_int "reset empties the count" 0 (Obs.Quantile.count q);
  check_bool "empty summary is nan" true
    (Float.is_nan (Obs.Quantile.summary q).Obs.Quantile.s_p50);
  match Obs.Quantile.create ~capacity:4 "test.quantile_tiny" with
  | _ -> Alcotest.fail "capacity < 8 must be rejected"
  | exception Invalid_argument _ -> ()

let test_quantile_window_slides () =
  (* Capacity 8 = one slot per shard: a single-domain writer retains
     only its newest sample, and [count] keeps the exact total. *)
  let q = Obs.Quantile.create ~capacity:8 "test.quantile_window" in
  for i = 1 to 20 do
    Obs.Quantile.record q (float_of_int i)
  done;
  check_int "count is total ever" 20 (Obs.Quantile.count q);
  let s = Obs.Quantile.summary q in
  check_int "window holds the newest sample" 1 s.Obs.Quantile.s_count;
  check (Alcotest.float 0.) "quantiles collapse to it" 20. s.Obs.Quantile.s_p50

(* --- windowed rate meter -------------------------------------------------- *)

let test_rate_window () =
  let r = Obs.Rate.create ~window_s:16 () in
  let ns_of_s s = s * 1_000_000_000 in
  for sec = 100 to 103 do
    for _ = 1 to 5 do
      Obs.Rate.observe_at r ~now_ns:(ns_of_s sec)
    done
  done;
  check_int "total is exact" 20 (Obs.Rate.total r);
  check_int "window sees all four seconds" 20
    (Obs.Rate.events_in_window r ~window_s:10 ~now_ns:(ns_of_s 103));
  check (Alcotest.float 1e-9) "mean rate over the window" 2.
    (Obs.Rate.per_second_at r ~window_s:10 ~now_ns:(ns_of_s 103));
  check_int "a narrow window clips old seconds" 10
    (Obs.Rate.events_in_window r ~window_s:2 ~now_ns:(ns_of_s 103));
  check_int "events age out" 0
    (Obs.Rate.events_in_window r ~window_s:4 ~now_ns:(ns_of_s 150));
  Obs.Rate.observe_at r ~now_ns:(ns_of_s 150);
  check_int "total stays cumulative" 21 (Obs.Rate.total r);
  Obs.Rate.reset r;
  check_int "reset" 0 (Obs.Rate.total r)

(* --- flight recorder ------------------------------------------------------ *)

let test_recorder_last_n () =
  let r = Obs.Recorder.create ~capacity:16 () in
  check_int "capacity honoured" 16 (Obs.Recorder.capacity r);
  for i = 0 to 39 do
    Obs.Recorder.push r i
  done;
  check_int "pushed is exact" 40 (Obs.Recorder.pushed r);
  check_int "holds exactly the bound" 16 (Obs.Recorder.recorded r);
  check_int "dropped = pushed - recorded" 24 (Obs.Recorder.dropped r);
  let entries = Obs.Recorder.dump r in
  check_int "dump size" 16 (List.length entries);
  (* The last [capacity] pushes survive, in completion order, even
     though every push came from one domain. *)
  List.iteri
    (fun i (seq, v) ->
      check_int (Printf.sprintf "entry %d seq" i) (24 + i) seq;
      check_int (Printf.sprintf "entry %d value" i) (24 + i) v)
    entries;
  Obs.Recorder.reset r;
  check_int "reset empties" 0 (Obs.Recorder.recorded r);
  check_int "reset zeroes pushed" 0 (Obs.Recorder.pushed r);
  match Obs.Recorder.create ~capacity:4 () with
  | _ -> Alcotest.fail "capacity < 8 must be rejected"
  | exception Invalid_argument _ -> ()

(* --- prometheus histogram export ------------------------------------------ *)

let test_prometheus_clamped_bucket () =
  let h = Obs.Metrics.histogram "test.prom_clamp" in
  Obs.Metrics.observe h 0.75;
  (* Far beyond the top bucket bound (2^33 s): clamped into it. *)
  Obs.Metrics.observe h 1e12;
  let prom = Obs.Metrics.to_prometheus (Obs.Metrics.snapshot ()) in
  check_bool "+Inf terminal equals _count" true
    (contains prom "test_prom_clamp_bucket{le=\"+Inf\"} 2"
    && contains prom "test_prom_clamp_count 2");
  check_bool "clamped top bucket exports no finite le" true
    (not (contains prom "test_prom_clamp_bucket{le=\"8589934592\"}"));
  check_bool "ordinary buckets still export cumulatively" true
    (contains prom "test_prom_clamp_bucket{le=\"1\"} 1")

(* --- sink --------------------------------------------------------------- *)

let test_sink_memory_order () =
  let sink = Obs.Sink.memory () in
  Obs.Sink.emit sink ~ts:1. ~kind:"a" [];
  Obs.Sink.emit sink ~ts:2. ~kind:"b" [];
  Obs.Sink.emit sink ~ts:3. ~kind:"c" [];
  let kinds =
    List.map (fun (e : Obs.Sink.event) -> e.Obs.Sink.kind)
      (Obs.Sink.events sink)
  in
  check (Alcotest.list Alcotest.string) "oldest first" [ "a"; "b"; "c" ] kinds

let test_sink_event_json () =
  let e =
    {
      Obs.Sink.ts = 1.5;
      kind = "step";
      fields =
        [
          ("msg", Obs.Sink.Str "hello \"world\"");
          ("n", Obs.Sink.Int 3);
          ("x", Obs.Sink.Num 0.5);
          ("b", Obs.Sink.Bool true);
        ];
    }
  in
  check Alcotest.string "golden event JSON"
    "{\"schema\":\"htlc-obs/v1\",\"type\":\"event\",\"ts\":1.5,\"kind\":\"step\",\"fields\":{\"msg\":\"hello \\\"world\\\"\",\"n\":3,\"x\":0.5,\"b\":true}}"
    (Obs.Sink.event_to_json e)

(* --- json parser strictness ---------------------------------------------- *)

let test_json_duplicate_keys () =
  (* Strict decoding: without the check the last duplicate would win
     silently for some consumers and the first for List.assoc_opt. *)
  (match Obs.Json_parse.parse "{\"a\":1,\"b\":2,\"a\":3}" with
  | _ -> Alcotest.fail "duplicate top-level key must be rejected"
  | exception Obs.Json_parse.Bad msg ->
    check_bool "error names the repeated key" true (contains msg "\"a\""));
  (match Obs.Json_parse.parse "{\"o\":{\"x\":1,\"x\":2}}" with
  | _ -> Alcotest.fail "duplicate nested key must be rejected"
  | exception Obs.Json_parse.Bad _ -> ());
  match Obs.Json_parse.parse "{\"o\":{\"x\":1},\"p\":{\"x\":2}}" with
  | _ -> ()
  | exception Obs.Json_parse.Bad msg ->
    Alcotest.failf "the same key in sibling objects is legal: %s" msg

(* --- pool stats + HTLC_JOBS validation ---------------------------------- *)

let test_pool_stats () =
  let s0 = Numerics.Pool.stats () in
  Numerics.Pool.run_chunks ~jobs:2 ~chunks:16 (fun _ -> ());
  let s1 = Numerics.Pool.stats () in
  check_bool "tasks_submitted grew" true
    (s1.Numerics.Pool.tasks_submitted > s0.Numerics.Pool.tasks_submitted);
  check_int "16 more chunks completed" 16
    (s1.Numerics.Pool.chunks_completed - s0.Numerics.Pool.chunks_completed);
  check_bool "queue high-water mark is sane" true
    (s1.Numerics.Pool.queue_depth_hwm >= 1
    && s1.Numerics.Pool.caller_helped >= 0)

let test_env_jobs_validation () =
  let expect_failure v =
    Unix.putenv "HTLC_JOBS" v;
    match Numerics.Pool.recommended () with
    | _ -> Alcotest.failf "HTLC_JOBS=%S must be rejected" v
    | exception Failure msg ->
      check_bool
        (Printf.sprintf "error for %S names the variable" v)
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "HTLC_JOBS")
  in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "HTLC_JOBS" "")
    (fun () ->
      expect_failure "abc";
      expect_failure "0";
      expect_failure "-2";
      expect_failure "1.5";
      Unix.putenv "HTLC_JOBS" "3";
      check_int "valid value is honoured" 3 (Numerics.Pool.recommended ());
      Unix.putenv "HTLC_JOBS" "  ";
      check_bool "whitespace counts as unset" true
        (Numerics.Pool.recommended () >= 1))

(* --- cutoff cache eviction ---------------------------------------------- *)

let test_cutoff_eviction () =
  Swap.Cutoff.clear_caches ();
  let p = Swap.Params.defaults in
  let value_at p_star = Swap.Cutoff.p_t3_low p ~p_star in
  (* 700 distinct keys through a 512-entry cache: bounded size, real
     (per-entry) evictions, and evicted keys recompute identically. *)
  let first = value_at 1.0 in
  for i = 0 to 699 do
    ignore (value_at (1.0 +. (float_of_int i /. 100.)))
  done;
  let t3_size, _ = Swap.Cutoff.cache_sizes () in
  check_bool "t3 cache stays within capacity" true (t3_size <= 512);
  check_bool "evictions happened per entry, not wholesale" true
    (Swap.Cutoff.cache_evictions () > 0 && t3_size > 256);
  check (Alcotest.float 0.) "evicted key recomputes identically" first
    (value_at 1.0);
  let hits, misses = Swap.Cutoff.cache_stats () in
  check_bool "stats reflect the sweep" true (misses >= 700 && hits >= 0);
  Swap.Cutoff.clear_caches ()

(* --- determinism guard --------------------------------------------------- *)

let test_mc_determinism_under_instrumentation () =
  let p = Swap.Params.defaults in
  let p_star = 2.0 in
  let policy = Swap.Agent.rational p ~p_star in
  let run ~jobs () =
    Swap.Montecarlo.run ~trials:4096 ~seed:17 ~jobs p ~p_star ~policy
  in
  let baseline =
    Obs.Metrics.set_enabled false;
    Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled true)
      (run ~jobs:1)
  in
  let instrumented_seq = run ~jobs:1 () in
  let instrumented_par = run ~jobs:4 () in
  let traced =
    Obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Trace.clear ())
      (run ~jobs:4)
  in
  check_bool "metrics on == metrics off (jobs=1)" true
    (baseline = instrumented_seq);
  check_bool "jobs=1 == jobs=4 with metrics on" true
    (instrumented_seq = instrumented_par);
  check_bool "tracing does not perturb results" true
    (instrumented_par = traced)

let test_protocol_trace_stable () =
  let p = Swap.Params.defaults in
  let faults =
    Chainsim.Faults.create ~drop_prob:0.4 ~reorg_prob:0.2 ()
  in
  let run () =
    Swap.Protocol.run ~seed:0xfeed ~faults_a:faults ~faults_b:faults
      ~retry:Swap.Agent.default_retry p ~p_star:2.0
  in
  let a = run () and b = run () in
  check_bool "sink-backed trace is deterministic" true
    (a.Swap.Protocol.trace = b.Swap.Protocol.trace);
  check_bool "trace is non-empty" true (a.Swap.Protocol.trace <> [])

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "enabled gating" `Quick test_enabled_gating;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "parallel fan-out" `Quick test_parallel_counters;
          Alcotest.test_case "snapshot + exporters" `Quick
            test_snapshot_and_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting + JSONL shape" `Quick
            test_trace_nesting_and_shape;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_is_free;
          Alcotest.test_case "bounded ring" `Quick test_trace_ring_bound;
          Alcotest.test_case "emit bypasses the gate" `Quick
            test_trace_emit_bypasses_gate;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "nearest-rank exactness" `Quick
            test_quantile_exact;
          Alcotest.test_case "window slides" `Quick
            test_quantile_window_slides;
        ] );
      ( "rate",
        [ Alcotest.test_case "trailing window" `Quick test_rate_window ] );
      ( "recorder",
        [ Alcotest.test_case "last-N ring" `Quick test_recorder_last_n ] );
      ( "prometheus",
        [
          Alcotest.test_case "clamped bucket folds into +Inf" `Quick
            test_prometheus_clamped_bucket;
        ] );
      ( "sink",
        [
          Alcotest.test_case "memory ordering" `Quick test_sink_memory_order;
          Alcotest.test_case "event JSON golden" `Quick test_sink_event_json;
        ] );
      ( "json_parse",
        [
          Alcotest.test_case "duplicate keys rejected" `Quick
            test_json_duplicate_keys;
        ] );
      ( "pool",
        [
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "HTLC_JOBS validation" `Quick
            test_env_jobs_validation;
        ] );
      ( "cutoff",
        [ Alcotest.test_case "second-chance eviction" `Quick
            test_cutoff_eviction ] );
      ( "determinism",
        [
          Alcotest.test_case "mc invariant to instrumentation" `Quick
            test_mc_determinism_under_instrumentation;
          Alcotest.test_case "protocol trace stable" `Quick
            test_protocol_trace_stable;
        ] );
    ]
