(* Observability layer: metrics registry correctness (including under
   pool fan-out), trace/sink export shapes, cutoff-cache eviction, pool
   stats, HTLC_JOBS validation, and the determinism guard showing that
   instrumentation never perturbs Monte-Carlo results. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- metrics registry --------------------------------------------------- *)

let test_counter_basics () =
  let c = Obs.Metrics.counter "test.counter_basics" in
  Obs.Metrics.reset_counter c;
  check_int "starts at zero" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  check_int "incr + add" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.counter_basics" in
  Obs.Metrics.incr c';
  check_int "registration is idempotent (same cells)" 43
    (Obs.Metrics.counter_value c);
  (match Obs.Metrics.gauge "test.counter_basics" with
  | _ -> Alcotest.fail "re-registering a counter as a gauge must fail"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.reset_counter c

let test_enabled_gating () =
  let c = Obs.Metrics.counter "test.enabled_gating" in
  Obs.Metrics.reset_counter c;
  Obs.Metrics.set_enabled false;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.set_enabled true;
  check_int "updates are no-ops while disabled" 0
    (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  check_int "updates resume when re-enabled" 1 (Obs.Metrics.counter_value c);
  Obs.Metrics.reset_counter c

let test_gauge_max () =
  let g = Obs.Metrics.gauge "test.gauge_max" in
  Obs.Metrics.set_gauge g 0.;
  Obs.Metrics.max_gauge g 3.;
  Obs.Metrics.max_gauge g 1.;
  check (Alcotest.float 0.) "max keeps the high-water mark" 3.
    (Obs.Metrics.gauge_value g)

let test_histogram_buckets () =
  let h = Obs.Metrics.histogram "test.histogram_buckets" in
  (* 1.0 lands in the (1, 2] bucket (upper bound 2), 0.75 in (0.5, 1]. *)
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 0.75;
  Obs.Metrics.observe h 0.75;
  let s = Obs.Metrics.hist_value h in
  check_int "count" 3 s.Obs.Metrics.count;
  check (Alcotest.float 1e-12) "sum" 2.5 s.Obs.Metrics.sum;
  check_bool "bucket upper bounds are powers of two" true
    (List.mem (2., 1) s.Obs.Metrics.buckets
    && List.mem (1., 2) s.Obs.Metrics.buckets)

let test_parallel_counters () =
  let c = Obs.Metrics.counter "test.parallel_counters" in
  let h = Obs.Metrics.histogram "test.parallel_hist" in
  Obs.Metrics.reset_counter c;
  let before = (Obs.Metrics.hist_value h).Obs.Metrics.count in
  Numerics.Pool.run_chunks ~jobs:4 ~chunks:1000 (fun chunk ->
      Obs.Metrics.incr c;
      Obs.Metrics.observe h (float_of_int (chunk + 1) *. 1e-6));
  check_int "no lost counter updates under fan-out" 1000
    (Obs.Metrics.counter_value c);
  check_int "no lost histogram updates under fan-out" 1000
    ((Obs.Metrics.hist_value h).Obs.Metrics.count - before);
  Obs.Metrics.reset_counter c

let test_snapshot_and_json () =
  let c = Obs.Metrics.counter "test.snapshot_counter" in
  Obs.Metrics.reset_counter c;
  Obs.Metrics.incr c;
  let s = Obs.Metrics.snapshot () in
  check_bool "snapshot carries the counter" true
    (List.mem_assoc "test.snapshot_counter" s.Obs.Metrics.counters);
  let json = Obs.Metrics.to_json s in
  check_bool "schema tag present" true
    (String.length json > 40
    && String.sub json 0 36 = "{\"schema\":\"htlc-obs/v1\",\"type\":\"metr");
  let prom = Obs.Metrics.to_prometheus s in
  check_bool "prometheus export mentions the counter" true
    (let needle = "test_snapshot_counter 1" in
     let n = String.length needle in
     let found = ref false in
     for i = 0 to String.length prom - n do
       if String.sub prom i n = needle then found := true
     done;
     !found);
  Obs.Metrics.reset_counter c

(* --- tracing ------------------------------------------------------------ *)

let test_trace_nesting_and_shape () =
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Obs.Trace.with_span "outer" (fun outer ->
      Obs.Trace.annotate outer "k" "v";
      Obs.Trace.with_span "inner" (fun _ -> ()));
  Obs.Trace.set_enabled false;
  let spans = Obs.Trace.spans () in
  check_int "two spans recorded" 2 (List.length spans);
  (* Inner finishes first (ring is finish-ordered). *)
  let inner = List.nth spans 0 and outer = List.nth spans 1 in
  check Alcotest.string "inner name" "inner" inner.Obs.Trace.f_name;
  check Alcotest.string "outer name" "outer" outer.Obs.Trace.f_name;
  check
    (Alcotest.option Alcotest.int)
    "implicit parent"
    (Some outer.Obs.Trace.f_id)
    inner.Obs.Trace.f_parent;
  check_bool "durations are non-negative" true
    (Int64.compare inner.Obs.Trace.f_stop_ns inner.Obs.Trace.f_start_ns >= 0);
  let line = Obs.Trace.to_jsonl outer in
  check_bool "span JSONL golden shape" true
    (String.sub line 0 30 = "{\"schema\":\"htlc-obs/v1\",\"type\""
    && String.length line > 0
    && line.[String.length line - 1] = '}');
  let contains s needle =
    let n = String.length needle in
    let found = ref false in
    for i = 0 to String.length s - n do
      if String.sub s i n = needle then found := true
    done;
    !found
  in
  check_bool "span carries name + annotations" true
    (contains line "\"name\":\"outer\""
    && contains line "\"annotations\":{\"k\":\"v\"}"
    && contains line "\"parent\":null");
  Obs.Trace.clear ()

let test_trace_disabled_is_free () =
  Obs.Trace.clear ();
  check_bool "disabled by default in tests" false (Obs.Trace.enabled ());
  Obs.Trace.with_span "ghost" (fun s -> Obs.Trace.annotate s "a" "b");
  check_int "no spans recorded while disabled" 0
    (List.length (Obs.Trace.spans ()))

let test_trace_ring_bound () =
  Obs.Trace.clear ();
  Obs.Trace.set_capacity 8;
  Obs.Trace.set_enabled true;
  for i = 0 to 19 do
    Obs.Trace.with_span (Printf.sprintf "s%d" i) (fun _ -> ())
  done;
  Obs.Trace.set_enabled false;
  let spans = Obs.Trace.spans () in
  check_int "ring keeps only the newest spans" 8 (List.length spans);
  check Alcotest.string "oldest retained span" "s12"
    (List.hd spans).Obs.Trace.f_name;
  Obs.Trace.set_capacity 4096

(* --- sink --------------------------------------------------------------- *)

let test_sink_memory_order () =
  let sink = Obs.Sink.memory () in
  Obs.Sink.emit sink ~ts:1. ~kind:"a" [];
  Obs.Sink.emit sink ~ts:2. ~kind:"b" [];
  Obs.Sink.emit sink ~ts:3. ~kind:"c" [];
  let kinds =
    List.map (fun (e : Obs.Sink.event) -> e.Obs.Sink.kind)
      (Obs.Sink.events sink)
  in
  check (Alcotest.list Alcotest.string) "oldest first" [ "a"; "b"; "c" ] kinds

let test_sink_event_json () =
  let e =
    {
      Obs.Sink.ts = 1.5;
      kind = "step";
      fields =
        [
          ("msg", Obs.Sink.Str "hello \"world\"");
          ("n", Obs.Sink.Int 3);
          ("x", Obs.Sink.Num 0.5);
          ("b", Obs.Sink.Bool true);
        ];
    }
  in
  check Alcotest.string "golden event JSON"
    "{\"schema\":\"htlc-obs/v1\",\"type\":\"event\",\"ts\":1.5,\"kind\":\"step\",\"fields\":{\"msg\":\"hello \\\"world\\\"\",\"n\":3,\"x\":0.5,\"b\":true}}"
    (Obs.Sink.event_to_json e)

(* --- json parser strictness ---------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_duplicate_keys () =
  (* Strict decoding: without the check the last duplicate would win
     silently for some consumers and the first for List.assoc_opt. *)
  (match Obs.Json_parse.parse "{\"a\":1,\"b\":2,\"a\":3}" with
  | _ -> Alcotest.fail "duplicate top-level key must be rejected"
  | exception Obs.Json_parse.Bad msg ->
    check_bool "error names the repeated key" true (contains msg "\"a\""));
  (match Obs.Json_parse.parse "{\"o\":{\"x\":1,\"x\":2}}" with
  | _ -> Alcotest.fail "duplicate nested key must be rejected"
  | exception Obs.Json_parse.Bad _ -> ());
  match Obs.Json_parse.parse "{\"o\":{\"x\":1},\"p\":{\"x\":2}}" with
  | _ -> ()
  | exception Obs.Json_parse.Bad msg ->
    Alcotest.failf "the same key in sibling objects is legal: %s" msg

(* --- pool stats + HTLC_JOBS validation ---------------------------------- *)

let test_pool_stats () =
  let s0 = Numerics.Pool.stats () in
  Numerics.Pool.run_chunks ~jobs:2 ~chunks:16 (fun _ -> ());
  let s1 = Numerics.Pool.stats () in
  check_bool "tasks_submitted grew" true
    (s1.Numerics.Pool.tasks_submitted > s0.Numerics.Pool.tasks_submitted);
  check_int "16 more chunks completed" 16
    (s1.Numerics.Pool.chunks_completed - s0.Numerics.Pool.chunks_completed);
  check_bool "queue high-water mark is sane" true
    (s1.Numerics.Pool.queue_depth_hwm >= 1
    && s1.Numerics.Pool.caller_helped >= 0)

let test_env_jobs_validation () =
  let expect_failure v =
    Unix.putenv "HTLC_JOBS" v;
    match Numerics.Pool.recommended () with
    | _ -> Alcotest.failf "HTLC_JOBS=%S must be rejected" v
    | exception Failure msg ->
      check_bool
        (Printf.sprintf "error for %S names the variable" v)
        true
        (String.length msg >= 9 && String.sub msg 0 9 = "HTLC_JOBS")
  in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "HTLC_JOBS" "")
    (fun () ->
      expect_failure "abc";
      expect_failure "0";
      expect_failure "-2";
      expect_failure "1.5";
      Unix.putenv "HTLC_JOBS" "3";
      check_int "valid value is honoured" 3 (Numerics.Pool.recommended ());
      Unix.putenv "HTLC_JOBS" "  ";
      check_bool "whitespace counts as unset" true
        (Numerics.Pool.recommended () >= 1))

(* --- cutoff cache eviction ---------------------------------------------- *)

let test_cutoff_eviction () =
  Swap.Cutoff.clear_caches ();
  let p = Swap.Params.defaults in
  let value_at p_star = Swap.Cutoff.p_t3_low p ~p_star in
  (* 700 distinct keys through a 512-entry cache: bounded size, real
     (per-entry) evictions, and evicted keys recompute identically. *)
  let first = value_at 1.0 in
  for i = 0 to 699 do
    ignore (value_at (1.0 +. (float_of_int i /. 100.)))
  done;
  let t3_size, _ = Swap.Cutoff.cache_sizes () in
  check_bool "t3 cache stays within capacity" true (t3_size <= 512);
  check_bool "evictions happened per entry, not wholesale" true
    (Swap.Cutoff.cache_evictions () > 0 && t3_size > 256);
  check (Alcotest.float 0.) "evicted key recomputes identically" first
    (value_at 1.0);
  let hits, misses = Swap.Cutoff.cache_stats () in
  check_bool "stats reflect the sweep" true (misses >= 700 && hits >= 0);
  Swap.Cutoff.clear_caches ()

(* --- determinism guard --------------------------------------------------- *)

let test_mc_determinism_under_instrumentation () =
  let p = Swap.Params.defaults in
  let p_star = 2.0 in
  let policy = Swap.Agent.rational p ~p_star in
  let run ~jobs () =
    Swap.Montecarlo.run ~trials:4096 ~seed:17 ~jobs p ~p_star ~policy
  in
  let baseline =
    Obs.Metrics.set_enabled false;
    Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled true)
      (run ~jobs:1)
  in
  let instrumented_seq = run ~jobs:1 () in
  let instrumented_par = run ~jobs:4 () in
  let traced =
    Obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Trace.clear ())
      (run ~jobs:4)
  in
  check_bool "metrics on == metrics off (jobs=1)" true
    (baseline = instrumented_seq);
  check_bool "jobs=1 == jobs=4 with metrics on" true
    (instrumented_seq = instrumented_par);
  check_bool "tracing does not perturb results" true
    (instrumented_par = traced)

let test_protocol_trace_stable () =
  let p = Swap.Params.defaults in
  let faults =
    Chainsim.Faults.create ~drop_prob:0.4 ~reorg_prob:0.2 ()
  in
  let run () =
    Swap.Protocol.run ~seed:0xfeed ~faults_a:faults ~faults_b:faults
      ~retry:Swap.Agent.default_retry p ~p_star:2.0
  in
  let a = run () and b = run () in
  check_bool "sink-backed trace is deterministic" true
    (a.Swap.Protocol.trace = b.Swap.Protocol.trace);
  check_bool "trace is non-empty" true (a.Swap.Protocol.trace <> [])

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "enabled gating" `Quick test_enabled_gating;
          Alcotest.test_case "gauge max" `Quick test_gauge_max;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "parallel fan-out" `Quick test_parallel_counters;
          Alcotest.test_case "snapshot + exporters" `Quick
            test_snapshot_and_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting + JSONL shape" `Quick
            test_trace_nesting_and_shape;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_is_free;
          Alcotest.test_case "bounded ring" `Quick test_trace_ring_bound;
        ] );
      ( "sink",
        [
          Alcotest.test_case "memory ordering" `Quick test_sink_memory_order;
          Alcotest.test_case "event JSON golden" `Quick test_sink_event_json;
        ] );
      ( "json_parse",
        [
          Alcotest.test_case "duplicate keys rejected" `Quick
            test_json_duplicate_keys;
        ] );
      ( "pool",
        [
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "HTLC_JOBS validation" `Quick
            test_env_jobs_validation;
        ] );
      ( "cutoff",
        [ Alcotest.test_case "second-chance eviction" `Quick
            test_cutoff_eviction ] );
      ( "determinism",
        [
          Alcotest.test_case "mc invariant to instrumentation" `Quick
            test_mc_determinism_under_instrumentation;
          Alcotest.test_case "protocol trace stable" `Quick
            test_protocol_trace_stable;
        ] );
    ]
