(* The deterministic multicore layer: Numerics.Pool must preserve chunk
   order and propagate exceptions, and the parallel Monte Carlo must be
   bit-identical for any jobs count (seed-stable RNG fan-out). *)

open Numerics

let p = Swap.Params.defaults

(* --- pool --------------------------------------------------------------- *)

let test_map_chunks_order () =
  List.iter
    (fun jobs ->
      let parts =
        Pool.map_chunks ~jobs ~chunk_size:7 ~n:100
          (fun ~chunk ~lo ~hi -> (chunk, lo, hi))
      in
      Alcotest.(check int)
        (Printf.sprintf "chunk count (jobs=%d)" jobs)
        15 (Array.length parts);
      Array.iteri
        (fun i (chunk, lo, hi) ->
          Alcotest.(check int) "chunk index in order" i chunk;
          Alcotest.(check int) "lo" (i * 7) lo;
          Alcotest.(check int) "hi" (min 100 ((i * 7) + 7)) hi)
        parts)
    [ 1; 4 ]

let test_map_list_order () =
  let xs = List.init 200 string_of_int in
  let ys = Pool.map_list ~jobs:4 (fun s -> s ^ "!") xs in
  Alcotest.(check (list string)) "order preserved"
    (List.map (fun s -> s ^ "!") xs)
    ys

let test_reduce_matches_sequential () =
  let sum jobs =
    Pool.parallel_for_reduce ~jobs ~chunk_size:64 ~n:10_001 ~init:0
      ~body:(fun ~chunk:_ ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
      ~combine:( + )
  in
  let expected = 10_001 * 10_000 / 2 in
  Alcotest.(check int) "jobs=1" expected (sum 1);
  Alcotest.(check int) "jobs=4" expected (sum 4)

let test_exception_propagation () =
  (* Chunks 2.. all fail; both the sequential and the parallel path must
     surface the lowest failing chunk's exception. *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "lowest failing chunk wins (jobs=%d)" jobs)
        (Failure "chunk 2")
        (fun () ->
          Pool.run_chunks ~jobs ~chunks:8 (fun chunk ->
              if chunk >= 2 then failwith (Printf.sprintf "chunk %d" chunk))))
    [ 1; 4 ]

let test_nested_submission () =
  (* A pool task fanning out its own chunked work must not deadlock and
     must stay deterministic. *)
  let rows =
    Pool.map_chunks ~jobs:4 ~chunk_size:1 ~n:6 (fun ~chunk ~lo:_ ~hi:_ ->
        Pool.parallel_for_reduce ~jobs:2 ~chunk_size:16 ~n:(100 * (chunk + 1))
          ~init:0
          ~body:(fun ~chunk:_ ~lo ~hi -> hi - lo)
          ~combine:( + ))
  in
  Alcotest.(check (list int))
    "nested reduces" [ 100; 200; 300; 400; 500; 600 ]
    (Array.to_list rows)

let test_set_jobs_rejects_nonpositive () =
  Alcotest.check_raises "jobs must be >= 1"
    (Invalid_argument "Pool.set_jobs: jobs must be >= 1") (fun () ->
      Pool.set_jobs 0)

(* --- rng fan-out -------------------------------------------------------- *)

let test_of_stream_reproducible_and_distinct () =
  let a = Rng.of_stream ~seed:42 ~stream:0 () in
  let a' = Rng.of_stream ~seed:42 ~stream:0 () in
  let b = Rng.of_stream ~seed:42 ~stream:1 () in
  let c = Rng.of_stream ~seed:43 ~stream:0 () in
  Alcotest.(check bool) "same (seed, stream) reproduces" true
    (Rng.bits64 a = Rng.bits64 a');
  let draws t = List.init 4 (fun _ -> Rng.bits64 t) in
  Alcotest.(check bool) "streams differ" false (draws a = draws b);
  Alcotest.(check bool) "seeds differ" false (draws a' = draws c)

(* --- Monte-Carlo determinism -------------------------------------------- *)

let check_same_result name (a : Swap.Montecarlo.result)
    (b : Swap.Montecarlo.result) =
  Alcotest.(check bool) (name ^ ": bit-identical result records") true (a = b)

let test_mc_run_jobs_invariant () =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let run jobs =
    Swap.Montecarlo.run ~trials:4_096 ~seed:0x51ab ~jobs p ~p_star:2. ~policy
  in
  check_same_result "plain" (run 1) (run 4);
  (* and a trial count that does not divide the chunk size evenly *)
  let run_ragged jobs =
    Swap.Montecarlo.run ~trials:1_337 ~seed:7 ~jobs p ~p_star:2. ~policy
  in
  check_same_result "ragged tail" (run_ragged 1) (run_ragged 3)

let test_mc_collateral_jobs_invariant () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let run jobs =
    Swap.Montecarlo.run_collateral ~trials:4_096 ~seed:0x51ab ~jobs c
      ~p_star:2.
  in
  check_same_result "collateral" (run 1) (run 4)

let test_utility_samples_jobs_invariant () =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let samples jobs =
    Swap.Montecarlo.utility_samples ~trials:4_096 ~seed:0x51ab ~jobs p
      ~p_star:2. ~policy
  in
  let ua1, ub1 = samples 1 and ua4, ub4 = samples 4 in
  Alcotest.(check bool) "alice samples identical" true (ua1 = ua4);
  Alcotest.(check bool) "bob samples identical" true (ub1 = ub4)

let test_trials_override () =
  let policy = Swap.Agent.rational p ~p_star:2. in
  Swap.Montecarlo.set_trials_override (Some 512);
  let r = Swap.Montecarlo.run ~trials:9_999 p ~p_star:2. ~policy in
  Swap.Montecarlo.set_trials_override None;
  Alcotest.(check int) "override wins over ~trials" 512
    r.Swap.Montecarlo.trials;
  let r' = Swap.Montecarlo.run ~trials:1_024 p ~p_star:2. ~policy in
  Alcotest.(check int) "override cleared" 1_024 r'.Swap.Montecarlo.trials

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map_chunks preserves order" `Quick
            test_map_chunks_order;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_order;
          Alcotest.test_case "reduce matches sequential" `Quick
            test_reduce_matches_sequential;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested submission" `Quick test_nested_submission;
          Alcotest.test_case "set_jobs validation" `Quick
            test_set_jobs_rejects_nonpositive;
        ] );
      ( "rng",
        [
          Alcotest.test_case "of_stream reproducible + distinct" `Quick
            test_of_stream_reproducible_and_distinct;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "run: jobs=1 == jobs=4" `Quick
            test_mc_run_jobs_invariant;
          Alcotest.test_case "run_collateral: jobs=1 == jobs=4" `Quick
            test_mc_collateral_jobs_invariant;
          Alcotest.test_case "utility_samples: jobs=1 == jobs=4" `Quick
            test_utility_samples_jobs_invariant;
          Alcotest.test_case "experiment-wide trials override" `Quick
            test_trials_override;
        ] );
    ]
