(* Tests for the execution layer: agent policies, the end-to-end
   protocol runner on the chain simulator, Monte-Carlo consistency with
   the analytic model, and the game-tree cross-check. *)

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let p = Swap.Params.defaults

(* --- Agent policies ------------------------------------------------------- *)

let test_rational_policy_matches_cutoffs () =
  let p_star = 2. in
  let policy = Swap.Agent.rational p ~p_star in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  Alcotest.(check bool) "cont above cutoff" true
    (policy.Swap.Agent.alice_t3 ~p_t3:(k3 +. 0.01) = Swap.Agent.Cont);
  Alcotest.(check bool) "stop below cutoff" true
    (policy.Swap.Agent.alice_t3 ~p_t3:(k3 -. 0.01) = Swap.Agent.Stop);
  Alcotest.(check bool) "stop at cutoff (Eq. 19 tie)" true
    (policy.Swap.Agent.alice_t3 ~p_t3:k3 = Swap.Agent.Stop);
  (match Swap.Cutoff.p_t2_band_endpoints p ~p_star with
  | Some (lo, hi) ->
    Alcotest.(check bool) "bob cont inside" true
      (policy.Swap.Agent.bob_t2 ~p_t2:(0.5 *. (lo +. hi)) = Swap.Agent.Cont);
    Alcotest.(check bool) "bob stop below" true
      (policy.Swap.Agent.bob_t2 ~p_t2:(lo *. 0.9) = Swap.Agent.Stop);
    Alcotest.(check bool) "bob stop above" true
      (policy.Swap.Agent.bob_t2 ~p_t2:(hi *. 1.1) = Swap.Agent.Stop)
  | None -> Alcotest.fail "band expected");
  Alcotest.(check bool) "initiates inside feasible band" true
    (policy.Swap.Agent.alice_t1 ~p_star = Swap.Agent.Cont);
  Alcotest.(check bool) "t4 always claims" true
    (policy.Swap.Agent.bob_t4 = Swap.Agent.Cont)

let test_rational_rejects_bad_rate () =
  let policy = Swap.Agent.rational p ~p_star:5. in
  Alcotest.(check bool) "won't initiate an absurd rate" true
    (policy.Swap.Agent.alice_t1 ~p_star:5. = Swap.Agent.Stop)

let test_honest_and_myopic () =
  Alcotest.(check bool) "honest always" true
    (Swap.Agent.honest.Swap.Agent.bob_t2 ~p_t2:1e9 = Swap.Agent.Cont);
  let myopic = Swap.Agent.myopic p ~p_star:2. in
  Alcotest.(check bool) "myopic bob balks at high price" true
    (myopic.Swap.Agent.bob_t2 ~p_t2:2.5 = Swap.Agent.Stop);
  Alcotest.(check bool) "myopic alice balks at low price" true
    (myopic.Swap.Agent.alice_t3 ~p_t3:1.9 = Swap.Agent.Stop)

(* --- Protocol runner --------------------------------------------------------- *)

let test_protocol_success_table1 () =
  let r = Swap.Protocol.run p ~p_star:2. in
  Alcotest.(check string) "outcome" "success"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome);
  check_float "alice -P* on a" (-2.) r.Swap.Protocol.alice_delta_a;
  check_float "alice +1 on b" 1. r.Swap.Protocol.alice_delta_b;
  check_float "bob +P* on a" 2. r.Swap.Protocol.bob_delta_a;
  check_float "bob -1 on b" (-1.) r.Swap.Protocol.bob_delta_b;
  Alcotest.(check bool) "secret seen at t4" true
    r.Swap.Protocol.secret_observed_at_t4

let test_protocol_abort_paths_are_atomic () =
  let scenarios =
    [
      ( "t1",
        { Swap.Agent.honest with alice_t1 = (fun ~p_star:_ -> Swap.Agent.Stop) },
        Swap.Protocol.Abort_t1 );
      ( "t2",
        { Swap.Agent.honest with bob_t2 = (fun ~p_t2:_ -> Swap.Agent.Stop) },
        Swap.Protocol.Abort_t2 );
      ( "t3",
        { Swap.Agent.honest with alice_t3 = (fun ~p_t3:_ -> Swap.Agent.Stop) },
        Swap.Protocol.Abort_t3 );
    ]
  in
  List.iter
    (fun (label, policy, expected) ->
      let r = Swap.Protocol.run p ~policy ~p_star:2. in
      if r.Swap.Protocol.outcome <> expected then
        Alcotest.failf "%s: wrong outcome %s" label
          (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome);
      check_float (label ^ " alice a") 0. r.Swap.Protocol.alice_delta_a;
      check_float (label ^ " alice b") 0. r.Swap.Protocol.alice_delta_b;
      check_float (label ^ " bob a") 0. r.Swap.Protocol.bob_delta_a;
      check_float (label ^ " bob b") 0. r.Swap.Protocol.bob_delta_b)
    scenarios

let test_protocol_late_reveal_fails_safe () =
  (* Alice reveals after the window: the swap fails, but atomically —
     nobody ends up with both assets. *)
  let r = Swap.Protocol.run p ~reveal_delay:2. ~p_star:2. in
  (match r.Swap.Protocol.outcome with
  | Swap.Protocol.Abort_t3 -> ()
  | Swap.Protocol.Anomalous _ ->
    (* Acceptable only if someone gained and lost symmetrically; the
       equal-expiry schedule of Eq. 13 should prevent this entirely. *)
    Alcotest.fail "equal-deadline schedule must not produce anomalies"
  | other ->
    Alcotest.failf "unexpected outcome %s"
      (Swap.Protocol.outcome_to_string other));
  check_float "alice whole" 0. r.Swap.Protocol.alice_delta_a;
  check_float "bob whole" 0. r.Swap.Protocol.bob_delta_b

let test_protocol_collateral_success_neutral () =
  let r = Swap.Protocol.run ~q:1. p ~p_star:2. in
  Alcotest.(check string) "outcome" "success"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome);
  (* Deposits returned: deltas match Table I exactly. *)
  check_float "alice a" (-2.) r.Swap.Protocol.alice_delta_a;
  check_float "bob a" 2. r.Swap.Protocol.bob_delta_a

let test_protocol_collateral_punishes_bob () =
  let policy =
    { Swap.Agent.honest with bob_t2 = (fun ~p_t2:_ -> Swap.Agent.Stop) }
  in
  let r = Swap.Protocol.run ~q:1. p ~policy ~p_star:2. in
  (* Bob forfeits his deposit to Alice. *)
  check_float "alice gains q" 1. r.Swap.Protocol.alice_delta_a;
  check_float "bob loses q" (-1.) r.Swap.Protocol.bob_delta_a;
  check_float "bob keeps token b" 0. r.Swap.Protocol.bob_delta_b

let test_protocol_collateral_punishes_alice () =
  let policy =
    { Swap.Agent.honest with alice_t3 = (fun ~p_t3:_ -> Swap.Agent.Stop) }
  in
  let r = Swap.Protocol.run ~q:1. p ~policy ~p_star:2. in
  check_float "alice loses q" (-1.) r.Swap.Protocol.alice_delta_a;
  check_float "bob gains q" 1. r.Swap.Protocol.bob_delta_a

let test_protocol_on_price_path () =
  (* A crash between t2 and t3: honest Alice completes anyway, rational
     Alice walks away at t3. *)
  let times = [| 0.1; 3.; 7.; 20. |] in
  let values = [| 2.; 2.; 0.5; 0.5 |] in
  let path = Stochastic.Path.create ~times ~values in
  let honest_run =
    Swap.Protocol.run_on_path ~policy:Swap.Agent.honest p ~p_star:2. ~path
  in
  let rational = Swap.Agent.rational p ~p_star:2. in
  let rational_run =
    Swap.Protocol.run_on_path ~policy:rational p ~p_star:2. ~path
  in
  Alcotest.(check string) "honest completes regardless" "success"
    (Swap.Protocol.outcome_to_string honest_run.Swap.Protocol.outcome);
  Alcotest.(check string) "rational alice aborts after crash" "abort@t3"
    (Swap.Protocol.outcome_to_string rational_run.Swap.Protocol.outcome)

let test_protocol_bob_deviations_caught () =
  (* Section II-B: Alice verifies Bob's contract before revealing; any
     deviation must make her withhold the secret, and the swap must
     fail atomically. *)
  List.iter
    (fun (label, deviation) ->
      let r = Swap.Protocol.run ~bob_deviation:deviation p ~p_star:2. in
      (match r.Swap.Protocol.outcome with
      | Swap.Protocol.Abort_t3 -> ()
      | other ->
        Alcotest.failf "%s: expected abort@t3, got %s" label
          (Swap.Protocol.outcome_to_string other));
      check_float (label ^ ": alice whole on a") 0. r.Swap.Protocol.alice_delta_a;
      check_float (label ^ ": alice gains nothing on b") 0.
        r.Swap.Protocol.alice_delta_b;
      check_float (label ^ ": bob keeps token b") 0. r.Swap.Protocol.bob_delta_b;
      Alcotest.(check bool)
        (label ^ ": secret never leaked") false
        r.Swap.Protocol.secret_observed_at_t4)
    [
      ("wrong hash", Swap.Protocol.Wrong_hash);
      ("short amount", Swap.Protocol.Short_amount 0.7);
      ("early expiry", Swap.Protocol.Early_expiry 2.);
    ]

let test_protocol_marginal_early_expiry_tolerated () =
  (* An expiry that still leaves the full claim window is conforming:
     t_b - t3 = tau_b = 4 under defaults, so shaving 0 h is fine. *)
  let r = Swap.Protocol.run ~bob_deviation:(Swap.Protocol.Early_expiry 0.) p
      ~p_star:2.
  in
  Alcotest.(check string) "still succeeds" "success"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome)

let test_protocol_trace_and_receipts () =
  let r = Swap.Protocol.run p ~p_star:2. in
  Alcotest.(check bool) "trace nonempty" true (List.length r.Swap.Protocol.trace >= 4);
  let failed_b =
    List.filter
      (fun (x : Chainsim.Chain.receipt) -> Result.is_error x.Chainsim.Chain.result)
      r.Swap.Protocol.receipts_b
  in
  Alcotest.(check int) "no failed chain_b operations" 0 (List.length failed_b)

(* --- Crash failures --------------------------------------------------------------- *)

let test_crash_alice_is_atomic () =
  List.iter
    (fun at ->
      let r = Swap.Protocol.run ~alice_offline_from:at p ~p_star:2. in
      (match r.Swap.Protocol.outcome with
      | Swap.Protocol.Anomalous _ ->
        Alcotest.failf "alice crash at %g must stay atomic" at
      | _ -> ());
      check_float "a-chain zero sum" 0.
        (r.Swap.Protocol.alice_delta_a +. r.Swap.Protocol.bob_delta_a))
    [ 0.; 1.5; 5. ]

let test_crash_bob_after_lock_violates_atomicity () =
  (* The Zakhary et al. violation: Bob offline while Alice reveals. *)
  let r = Swap.Protocol.run ~bob_offline_from:7.5 p ~p_star:2. in
  (match r.Swap.Protocol.outcome with
  | Swap.Protocol.Anomalous _ -> ()
  | other ->
    Alcotest.failf "expected anomaly, got %s"
      (Swap.Protocol.outcome_to_string other));
  (* Alice ends with both assets' value; Bob with neither. *)
  check_float "alice keeps her Token_a (refund)" 0.
    r.Swap.Protocol.alice_delta_a;
  check_float "alice also has Token_b" 1. r.Swap.Protocol.alice_delta_b;
  check_float "bob got no Token_a" 0. r.Swap.Protocol.bob_delta_a;
  check_float "bob lost his Token_b" (-1.) r.Swap.Protocol.bob_delta_b

let test_crash_bob_early_is_atomic () =
  let r = Swap.Protocol.run ~bob_offline_from:1. p ~p_star:2. in
  Alcotest.(check string) "no HTLC deployed" "abort@t2"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome);
  check_float "alice whole" 0. r.Swap.Protocol.alice_delta_a

let test_transient_outage_back_before_t4 () =
  (* Bob drops out after Alice reveals but recovers before his claim
     window: the swap completes as if nothing happened. *)
  let r =
    Swap.Protocol.run ~bob_offline_from:7.5 ~bob_online_again_at:7.9 p
      ~p_star:2.
  in
  Alcotest.(check string) "completes" "success"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome)

let test_transient_outage_back_too_late_without_slack () =
  (* On the ideal schedule t_lock_a = t4 + tau_a exactly, so a recovery
     after t4 leaves no margin: the late claim cannot confirm in time. *)
  let r =
    Swap.Protocol.run ~bob_offline_from:7.5 ~bob_online_again_at:9. p
      ~p_star:2.
  in
  match r.Swap.Protocol.outcome with
  | Swap.Protocol.Anomalous _ -> ()
  | other ->
    Alcotest.failf "zero-margin recovery must still violate atomicity: %s"
      (Swap.Protocol.outcome_to_string other)

let test_transient_outage_slack_buys_recovery () =
  (* Two hours of slack on the t_lock_a leg: Bob back at 11 claims and
     confirms at 14 <= t_lock_a = 15. *)
  let r =
    Swap.Protocol.run ~bob_offline_from:9.5 ~bob_online_again_at:11.
      ~delay_t2:2. p ~p_star:2.
  in
  Alcotest.(check string) "slack absorbs the outage" "success"
    (Swap.Protocol.outcome_to_string r.Swap.Protocol.outcome);
  check_float "bob paid" 2. r.Swap.Protocol.bob_delta_a

(* --- Resilience under injected faults ------------------------------------------ *)

let lossy =
  Chainsim.Faults.create ~drop_prob:0.25
    ~delay:(Chainsim.Faults.Shifted_exponential { mean = 1.; cap = 4. })
    ()

let test_retry_flips_outcomes () =
  (* Resubmission must matter: many seeds that fail under no_retry
     succeed once the agents re-post dropped transactions into a
     slackened schedule.  (A resubmission consumes a tx id, which
     re-rolls the fates of later transactions on that chain, so a few
     individual seeds can flip the other way — but on net retrying must
     win clearly.) *)
  let outcome retry seed =
    (Swap.Protocol.run ~faults_a:lossy ~faults_b:lossy ~retry ~delay_t2:4.
       ~delay_t3:4. ~seed p ~p_star:2.)
      .Swap.Protocol.outcome
  in
  let rescued = ref 0 and broken = ref 0 in
  for seed = 0 to 99 do
    let bare = outcome Swap.Agent.no_retry seed in
    let retried = outcome Swap.Agent.default_retry seed in
    if bare <> Swap.Protocol.Success && retried = Swap.Protocol.Success then
      incr rescued;
    if bare = Swap.Protocol.Success && retried <> Swap.Protocol.Success then
      incr broken
  done;
  Alcotest.(check bool)
    (Printf.sprintf "retries rescued %d and broke %d of 100 runs" !rescued
       !broken)
    true
    (!rescued > 0 && !rescued > 2 * !broken)

let test_protocol_deterministic_under_faults () =
  let play () =
    Swap.Protocol.run ~faults_a:lossy ~faults_b:lossy
      ~retry:Swap.Agent.default_retry ~delay_t2:2. ~delay_t3:2. ~seed:1234 p
      ~p_star:2.
  in
  let a = play () and b = play () in
  Alcotest.(check bool) "same outcome" true
    (a.Swap.Protocol.outcome = b.Swap.Protocol.outcome);
  Alcotest.(check bool) "same trace" true
    (a.Swap.Protocol.trace = b.Swap.Protocol.trace);
  Alcotest.(check bool) "same receipts" true
    (List.map
       (fun (r : Chainsim.Chain.receipt) ->
         (r.Chainsim.Chain.time, r.Chainsim.Chain.description))
       a.Swap.Protocol.receipts_a
    = List.map
        (fun (r : Chainsim.Chain.receipt) ->
          (r.Chainsim.Chain.time, r.Chainsim.Chain.description))
        b.Swap.Protocol.receipts_a);
  Alcotest.(check bool) "same telemetry" true
    (a.Swap.Protocol.telemetry = b.Swap.Protocol.telemetry)

let test_telemetry_faultless_baseline () =
  let r = Swap.Protocol.run p ~p_star:2. in
  let t = r.Swap.Protocol.telemetry in
  Alcotest.(check int) "four actions, one attempt each" 4
    (List.length t.Swap.Protocol.submissions);
  Alcotest.(check int) "no retries" 0 t.Swap.Protocol.retries;
  check_float "no margin consumed on a" 0. t.Swap.Protocol.margin_consumed_a;
  check_float "no margin consumed on b" 0. t.Swap.Protocol.margin_consumed_b;
  List.iter
    (fun (s : Swap.Protocol.submission) ->
      match s.Swap.Protocol.confirmed_at with
      | Some c -> check_float "confirmed after exactly tau"
          (s.Swap.Protocol.submitted_at
          +. (if s.Swap.Protocol.chain = "chain_a" then p.Swap.Params.tau_a
              else p.Swap.Params.tau_b))
          c
      | None -> Alcotest.fail "faultless submissions all confirm")
    t.Swap.Protocol.submissions;
  check_float "nothing stranded on a" 0. r.Swap.Protocol.escrow_leftover_a;
  check_float "nothing stranded on b" 0. r.Swap.Protocol.escrow_leftover_b

(* --- AC3 witness protocol ----------------------------------------------------------- *)

let test_ac3_happy_path_table1 () =
  let r = Swap.Ac3.run p ~p_star:2. in
  Alcotest.(check string) "success" "success"
    (Swap.Ac3.outcome_to_string r.Swap.Ac3.outcome);
  check_float "alice -P*" (-2.) r.Swap.Ac3.alice_delta_a;
  check_float "alice +1" 1. r.Swap.Ac3.alice_delta_b;
  check_float "bob +P*" 2. r.Swap.Ac3.bob_delta_a;
  check_float "bob -1" (-1.) r.Swap.Ac3.bob_delta_b

let test_ac3_survives_agent_crashes () =
  List.iter
    (fun (label, run) ->
      let r = run () in
      if r.Swap.Ac3.outcome <> Swap.Ac3.Success then
        Alcotest.failf "%s: expected success, got %s" label
          (Swap.Ac3.outcome_to_string r.Swap.Ac3.outcome))
    [
      ("alice crash after t1",
       fun () -> Swap.Ac3.run ~alice_offline_from:2. p ~p_star:2.);
      ("bob crash after t2",
       fun () -> Swap.Ac3.run ~bob_offline_from:5. p ~p_star:2.);
      ("both crash after t2",
       fun () ->
         Swap.Ac3.run ~alice_offline_from:4. ~bob_offline_from:5. p ~p_star:2.);
    ]

let test_ac3_witness_crash_fails_atomically () =
  let r = Swap.Ac3.run ~witness_offline_from:5. p ~p_star:2. in
  Alcotest.(check string) "timeout" "failed (witness timeout)"
    (Swap.Ac3.outcome_to_string r.Swap.Ac3.outcome);
  check_float "alice whole" 0. r.Swap.Ac3.alice_delta_a;
  check_float "bob whole" 0. r.Swap.Ac3.bob_delta_b

let test_ac3_sr_equals_alice_committed_regime () =
  let v = Swap.Optionality.value p ~p_star:2. Swap.Optionality.alice_committed in
  check_float ~tol:1e-6 "SR identity" v.Swap.Optionality.success_rate
    (Swap.Ac3.success_rate p ~p_star:2.)

let test_ac3_sr_dominates_htlc () =
  List.iter
    (fun sigma ->
      let p' = Swap.Params.with_sigma p sigma in
      if Swap.Ac3.success_rate p' ~p_star:2.
         < Swap.Success.analytic p' ~p_star:2. -. 1e-9
      then Alcotest.failf "AC3 SR below HTLC at sigma=%g" sigma)
    [ 0.05; 0.1; 0.15 ]

let test_ac3_rational_policy_declines_bad_price () =
  let policy = Swap.Ac3.rational_policy p ~p_star:2. in
  let r =
    Swap.Ac3.run ~policy ~price:(fun t -> if t < 2. then 2. else 5.) p
      ~p_star:2.
  in
  (* Token_b mooned before t2: rational Bob keeps it. *)
  Alcotest.(check string) "bob declines" "abort@t2"
    (Swap.Ac3.outcome_to_string r.Swap.Ac3.outcome);
  check_float "alice refunded" 0. r.Swap.Ac3.alice_delta_a

(* --- AC3WN (witness network) -------------------------------------------------------- *)

let test_ac3wn_happy_path () =
  let r = Swap.Ac3wn.run p ~p_star:2. in
  Alcotest.(check string) "success" "success"
    (Swap.Ac3wn.outcome_to_string r.Swap.Ac3wn.outcome);
  check_float "alice" (-2.) r.Swap.Ac3wn.alice_delta_a;
  check_float "bob" 2. r.Swap.Ac3wn.bob_delta_a;
  (match r.Swap.Ac3wn.decision_confirmed_at with
  | Some t -> check_float "decision at t3 + tau_w" 10. t
  | None -> Alcotest.fail "decision expected")

let test_ac3wn_survives_any_single_crash () =
  List.iter
    (fun (label, run) ->
      let r = run () in
      if r.Swap.Ac3wn.outcome <> Swap.Ac3wn.Success then
        Alcotest.failf "%s: expected success, got %s" label
          (Swap.Ac3wn.outcome_to_string r.Swap.Ac3wn.outcome))
    [
      ("alice crash after t1",
       fun () -> Swap.Ac3wn.run ~alice_offline_from:2. p ~p_star:2.);
      ("bob crash after t2",
       fun () -> Swap.Ac3wn.run ~bob_offline_from:5. p ~p_star:2.);
      ("alice crash after posting",
       fun () -> Swap.Ac3wn.run ~alice_offline_from:8. p ~p_star:2.);
    ]

let test_ac3wn_all_crash_fails_atomically () =
  let r =
    Swap.Ac3wn.run ~alice_offline_from:5. ~bob_offline_from:5. p ~p_star:2.
  in
  Alcotest.(check string) "timeout" "failed (nobody decided)"
    (Swap.Ac3wn.outcome_to_string r.Swap.Ac3wn.outcome);
  check_float "alice whole" 0. r.Swap.Ac3wn.alice_delta_a;
  check_float "bob whole" 0. r.Swap.Ac3wn.bob_delta_b

let test_ac3wn_latency_premium () =
  (* One witness-chain confirmation slower than AC3TW's happy path. *)
  let tl = Swap.Timeline.ideal p in
  let ac3tw = tl.Swap.Timeline.t3 +. max p.Swap.Params.tau_a p.Swap.Params.tau_b in
  check_float "tau_w premium"
    (ac3tw +. p.Swap.Params.tau_a)
    (Swap.Ac3wn.happy_path_hours p);
  check_float "custom tau_witness" (ac3tw +. 7.)
    (Swap.Ac3wn.happy_path_hours ~tau_witness:7. p)

let test_ac3wn_same_strategic_sr () =
  check_float ~tol:1e-9 "SR identity with AC3TW"
    (Swap.Ac3.success_rate p ~p_star:2.)
    (Swap.Ac3wn.success_rate p ~p_star:2.)

(* --- Waiting-time margins ------------------------------------------------------------ *)

let test_margins_zero_reduces_to_baseline () =
  let m = Swap.Margins.create p ~delay_t2:0. ~delay_t3:0. in
  check_float ~tol:1e-9 "SR"
    (Swap.Success.analytic p ~p_star:2.)
    (Swap.Margins.success_rate m ~p_star:2.);
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:2. in
  let band = Swap.Cutoff.p_t2_band p ~p_star:2. in
  check_float ~tol:1e-9 "alice t1"
    (Swap.Utility.a_t1_cont p ~p_star:2. ~k3 ~band)
    (Swap.Margins.a_t1_cont m ~p_star:2.);
  check_float ~tol:1e-9 "bob t1"
    (Swap.Utility.b_t1_cont p ~p_star:2. ~k3 ~band)
    (Swap.Margins.b_t1_cont m ~p_star:2.)

let test_margins_slack_hurts_everyone () =
  List.iter
    (fun (d2, d3) ->
      let m = Swap.Margins.create p ~delay_t2:d2 ~delay_t3:d3 in
      let loss_a, loss_b =
        Swap.Margins.schedule_cost p ~p_star:2. ~delay_t2:d2 ~delay_t3:d3
      in
      if loss_a <= 0. then Alcotest.failf "alice must lose at (%g,%g)" d2 d3;
      if loss_b <= 0. then Alcotest.failf "bob must lose at (%g,%g)" d2 d3;
      if Swap.Margins.success_rate m ~p_star:2.
         >= Swap.Success.analytic p ~p_star:2.
      then Alcotest.failf "SR must fall at (%g,%g)" d2 d3)
    [ (2., 0.); (0., 2.); (3., 3.) ]

let test_margins_monotone_in_slack () =
  let sr d =
    Swap.Margins.success_rate
      (Swap.Margins.create p ~delay_t2:d ~delay_t3:d)
      ~p_star:2.
  in
  if not (sr 0. > sr 1. && sr 1. > sr 3.) then
    Alcotest.fail "SR must decrease monotonically in slack"

(* --- Monte Carlo ---------------------------------------------------------------- *)

let test_mc_matches_analytic () =
  let p_star = 2. in
  let analytic = Swap.Success.analytic p ~p_star in
  let policy = Swap.Agent.rational p ~p_star in
  let mc = Swap.Montecarlo.run ~trials:60_000 ~seed:31 p ~p_star ~policy in
  let lo, hi = mc.Swap.Montecarlo.ci95 in
  if analytic < lo -. 0.01 || analytic > hi +. 0.01 then
    Alcotest.failf "MC %g (CI %g-%g) vs analytic %g" mc.Swap.Montecarlo.rate lo
      hi analytic

let test_mc_collateral_matches_analytic () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let analytic = Swap.Collateral.success_rate c ~p_star:2. in
  let mc = Swap.Montecarlo.run_collateral ~trials:60_000 ~seed:37 c ~p_star:2. in
  let lo, hi = mc.Swap.Montecarlo.ci95 in
  if analytic < lo -. 0.01 || analytic > hi +. 0.01 then
    Alcotest.failf "MC %g (CI %g-%g) vs analytic %g" mc.Swap.Montecarlo.rate lo
      hi analytic

let test_mc_honest_always_succeeds () =
  let mc =
    Swap.Montecarlo.run ~trials:5_000 p ~p_star:2. ~policy:Swap.Agent.honest
  in
  check_float "honest SR = 1" 1. mc.Swap.Montecarlo.rate

let test_mc_deterministic_given_seed () =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let a = Swap.Montecarlo.run ~trials:2_000 ~seed:99 p ~p_star:2. ~policy in
  let b = Swap.Montecarlo.run ~trials:2_000 ~seed:99 p ~p_star:2. ~policy in
  Alcotest.(check int) "same successes" a.Swap.Montecarlo.successes
    b.Swap.Montecarlo.successes

let test_mc_myopic_underperforms () =
  let rational = Swap.Agent.rational p ~p_star:2. in
  let myopic = Swap.Agent.myopic p ~p_star:2. in
  let mr = Swap.Montecarlo.run ~trials:20_000 p ~p_star:2. ~policy:rational in
  let mm = Swap.Montecarlo.run ~trials:20_000 p ~p_star:2. ~policy:myopic in
  if mm.Swap.Montecarlo.rate >= mr.Swap.Montecarlo.rate then
    Alcotest.fail "myopic agents must fail more often"

let test_mc_jump_sampler_direction () =
  (* At matched total variance, moving variance out of the diffusion
     into rare jumps RAISES the success rate: defections are driven by
     typical moves (the diffusive sigma), not by tail mass.  See the
     "jumps" experiment for the full ablation. *)
  let policy = Swap.Agent.rational p ~p_star:2. in
  let jd =
    Stochastic.Jump_diffusion.create ~mu:p.Swap.Params.mu ~sigma:0.07
      ~lambda:0.05 ~jump_mean:(-0.02) ~jump_stddev:0.3
  in
  let gbm_mc = Swap.Montecarlo.run ~trials:30_000 p ~p_star:2. ~policy in
  let jump_mc =
    Swap.Montecarlo.run ~trials:30_000
      ~sampler:(Swap.Montecarlo.jump_sampler jd)
      p ~p_star:2. ~policy
  in
  if jump_mc.Swap.Montecarlo.rate <= gbm_mc.Swap.Montecarlo.rate then
    Alcotest.fail
      "same-variance jump model should raise SR (lower diffusive sigma)"

let test_mc_utility_samples_consistent () =
  let policy = Swap.Agent.rational p ~p_star:2. in
  let ua, ub = Swap.Montecarlo.utility_samples ~trials:20_000 ~seed:8 p ~p_star:2. ~policy in
  let mc = Swap.Montecarlo.run ~trials:20_000 ~seed:8 p ~p_star:2. ~policy in
  check_float ~tol:1e-9 "alice mean identical (same seed)"
    mc.Swap.Montecarlo.mean_utility_alice
    (Numerics.Stats.mean ua);
  Alcotest.(check int) "sample count = initiated" mc.Swap.Montecarlo.initiated
    (Array.length ua);
  (* The swap is a risky position: realised utility must disperse. *)
  if Numerics.Stats.stddev ua < 0.05 then
    Alcotest.fail "alice's utility dispersion unexpectedly small";
  if Numerics.Stats.stddev ub < 0.05 then
    Alcotest.fail "bob's utility dispersion unexpectedly small";
  (* Bob's downside tail: 5% quantile well below the mean. *)
  if Numerics.Stats.quantile ub 0.05 >= Numerics.Stats.mean ub then
    Alcotest.fail "bob must carry downside risk"

(* --- Lattice game cross-check ------------------------------------------------------- *)

let test_lattice_game_converges () =
  let p_star = 2. in
  let analytic = Swap.Success.analytic p ~p_star in
  let spec = Swap.Lattice_game.make_spec ~steps_a:120 ~steps_b:120 p ~p_star in
  let sol = Swap.Lattice_game.solve spec in
  if abs_float (sol.Swap.Lattice_game.success_rate -. analytic) > 0.03 then
    Alcotest.failf "lattice SR %g vs analytic %g"
      sol.Swap.Lattice_game.success_rate analytic;
  (match sol.Swap.Lattice_game.t3_boundary with
  | Some b ->
    check_float ~tol:0.05 "t3 boundary vs Eq. 18"
      (Swap.Cutoff.p_t3_low p ~p_star)
      b
  | None -> Alcotest.fail "Alice should continue at some lattice node");
  Alcotest.(check bool) "initiates at a feasible rate" true
    sol.Swap.Lattice_game.alice_initiates

let test_lattice_game_refinement_improves () =
  let p_star = 2. in
  let analytic = Swap.Success.analytic p ~p_star in
  let err steps =
    let spec = Swap.Lattice_game.make_spec ~steps_a:steps ~steps_b:steps p ~p_star in
    abs_float ((Swap.Lattice_game.solve spec).Swap.Lattice_game.success_rate -. analytic)
  in
  (* Binomial-lattice convergence oscillates, so compare a coarse and a
     fine lattice rather than neighbours. *)
  if not (err 120 < err 10) then
    Alcotest.fail "refining the lattice must reduce the SR error"

let test_lattice_game_rejects_infeasible_rate () =
  let spec = Swap.Lattice_game.make_spec ~steps_a:60 ~steps_b:60 p ~p_star:4. in
  let sol = Swap.Lattice_game.solve spec in
  Alcotest.(check bool) "no initiation at absurd rate" false
    sol.Swap.Lattice_game.alice_initiates

let test_lattice_game_collateral_cross_check () =
  List.iter
    (fun q ->
      let spec =
        Swap.Lattice_game.make_spec ~steps_a:100 ~steps_b:100 ~q p ~p_star:2.
      in
      let sol = Swap.Lattice_game.solve spec in
      let analytic =
        Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q)
          ~p_star:2.
      in
      if abs_float (sol.Swap.Lattice_game.success_rate -. analytic) > 0.03 then
        Alcotest.failf "q=%g: lattice %g vs analytic %g" q
          sol.Swap.Lattice_game.success_rate analytic;
      match sol.Swap.Lattice_game.t3_boundary with
      | Some b ->
        let kc =
          Swap.Collateral.p_t3_low (Swap.Collateral.symmetric p ~q) ~p_star:2.
        in
        if abs_float (b -. kc) > 0.05 then
          Alcotest.failf "q=%g: boundary %g vs Eq. 34 %g" q b kc
      | None -> Alcotest.fail "boundary expected")
    [ 0.25; 0.5 ]

let test_lattice_game_tree_is_valid () =
  let spec = Swap.Lattice_game.make_spec ~steps_a:12 ~steps_b:12 p ~p_star:2. in
  match Gametree.Game.validate (Swap.Lattice_game.build_full spec) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid game tree: %s" e

(* --- Multi-hop cyclic swaps -------------------------------------------------------- *)

let steady = fun _i _t -> 2.

let test_multihop_happy_path () =
  let spec = Swap.Multihop.make ~parties:4 ~p_star:2. p in
  let r = Swap.Multihop.run ~price_paths:steady spec in
  (match r.Swap.Multihop.outcome with
  | Swap.Multihop.Success -> ()
  | _ -> Alcotest.fail "4-party cycle must complete");
  Array.iter
    (fun (out, inc) ->
      check_float "gave one" (-1.) out;
      check_float "received one" 1. inc)
    r.Swap.Multihop.deltas

let test_multihop_abort_refunds_everyone () =
  let spec = Swap.Multihop.make ~parties:4 ~p_star:2. p in
  let decline_at k i ~price:_ =
    if i = k then Swap.Agent.Stop else Swap.Agent.Cont
  in
  List.iter
    (fun k ->
      let r =
        Swap.Multihop.run ~price_paths:steady ~decisions:(decline_at k) spec
      in
      (match (k, r.Swap.Multihop.outcome) with
      | 0, Swap.Multihop.Abort_no_reveal -> ()
      | k, Swap.Multihop.Abort_at_lock j when j = k -> ()
      | _, other ->
        Alcotest.failf "decline by %d: unexpected outcome %s" k
          (match other with
          | Swap.Multihop.Success -> "success"
          | Swap.Multihop.Abort_at_lock j -> Printf.sprintf "abort@%d" j
          | Swap.Multihop.Abort_no_reveal -> "no reveal"
          | Swap.Multihop.Anomalous s -> s));
      Array.iter
        (fun (out, inc) ->
          check_float "outgoing restored" 0. out;
          check_float "nothing received" 0. inc)
        r.Swap.Multihop.deltas)
    [ 0; 1; 3 ]

let test_multihop_expiry_schedule_staggered () =
  let spec = Swap.Multihop.make ~parties:4 ~p_star:2. p in
  let ex = Swap.Multihop.expiry_schedule spec in
  for j = 1 to 3 do
    if ex.(j) >= ex.(j - 1) then
      Alcotest.fail "deadlines must grow toward the leader's chain"
  done;
  (* Every claim confirms exactly at its expiry (tight schedule). *)
  check_float "lock phase" 16. (Swap.Multihop.lock_phase_hours spec)

let test_multihop_sr_decays_with_parties () =
  let sr n =
    (Swap.Multihop.mc_success_rate ~trials:15_000
       (Swap.Multihop.make ~parties:n ~p_star:2. p))
      .Swap.Multihop.rate
  in
  let s2 = sr 2 and s4 = sr 4 and s6 = sr 6 in
  if not (s2 > s4 && s4 > s6) then
    Alcotest.failf "SR must decay with hops: %g %g %g" s2 s4 s6;
  if s6 >= 0.5 *. s2 then
    Alcotest.fail "decay should be substantial by 6 parties"

let test_multihop_crash_mid_cascade_strands_one_party () =
  let spec = Swap.Multihop.make ~parties:3 ~p_star:2. p in
  let r = Swap.Multihop.run ~price_paths:steady ~offline:[ (2, 10.) ] spec in
  (match r.Swap.Multihop.outcome with
  | Swap.Multihop.Anomalous _ -> ()
  | _ -> Alcotest.fail "mid-cascade crash must break atomicity");
  (* The crashed party gave without receiving; others are whole. *)
  let out2, in2 = r.Swap.Multihop.deltas.(2) in
  check_float "party2 gave" (-1.) out2;
  check_float "party2 got nothing" 0. in2

(* --- Fuzzing: invariants under arbitrary adversities ---------------------------- *)

let fuzz_tests =
  let open QCheck in
  let scenario_gen =
    Gen.(
      let* seed = int_range 0 100_000 in
      let* p_star = float_range 1.2 3.2 in
      let* q = oneofl [ 0.; 0.25; 1. ] in
      let* reveal_delay = oneofl [ 0.; 0.5; 2.; 5. ] in
      let* alice_off = opt (float_range 0. 20.) in
      let* bob_off = opt (float_range 0. 20.) in
      let* deviation =
        oneofl
          [ None; Some Swap.Protocol.Wrong_hash;
            Some (Swap.Protocol.Short_amount 0.5);
            Some (Swap.Protocol.Early_expiry 1.5) ]
      in
      let* price_jump = float_range 0.2 5. in
      return
        (seed, p_star, q, reveal_delay, alice_off, bob_off, deviation,
         price_jump))
  in
  let arb = make scenario_gen in
  let run_scenario
      (seed, p_star, q, reveal_delay, alice_off, bob_off, deviation, jump) =
    let price t = if t < 5. then p.Swap.Params.p0 else p.Swap.Params.p0 *. jump in
    (* Mid-game rationality only; the t1 feasibility solve is expensive
       and irrelevant to the invariants under test. *)
    let k3 = Swap.Cutoff.p_t3_low p ~p_star in
    let band = Swap.Cutoff.p_t2_band p ~p_star in
    let policy =
      {
        Swap.Agent.name = "fuzz";
        alice_t1 = (fun ~p_star:_ -> Swap.Agent.Cont);
        bob_t2 =
          (fun ~p_t2 ->
            if Swap.Intervals.contains band p_t2 then Swap.Agent.Cont
            else Swap.Agent.Stop);
        alice_t3 =
          (fun ~p_t3 -> if p_t3 > k3 then Swap.Agent.Cont else Swap.Agent.Stop);
        bob_t4 = Swap.Agent.Cont;
      }
    in
    Swap.Protocol.run ~q ~policy ~price ~reveal_delay ?bob_deviation:deviation
      ?alice_offline_from:alice_off ?bob_offline_from:bob_off ~seed p ~p_star
  in
  [
    Test.make ~name:"fuzz: token conservation on both chains" ~count:150 arb
      (fun scenario ->
        let r = run_scenario scenario in
        (* Whatever happens, tokens are only redistributed. *)
        let _, p_star, q, _, _, _, _, _ = scenario in
        ignore q;
        abs_float (r.Swap.Protocol.alice_delta_b +. r.Swap.Protocol.bob_delta_b)
        < 1e-9
        && r.Swap.Protocol.alice_delta_b <= 1. +. 1e-9
        && r.Swap.Protocol.bob_delta_a <= p_star +. (2. *. q) +. 1e-9);
    Test.make ~name:"fuzz: success iff Table I deltas" ~count:150 arb
      (fun scenario ->
        let r = run_scenario scenario in
        let _, p_star, _, _, _, _, _, _ = scenario in
        match r.Swap.Protocol.outcome with
        | Swap.Protocol.Success ->
          abs_float (r.Swap.Protocol.alice_delta_a +. p_star) < 1e-9
          && abs_float (r.Swap.Protocol.alice_delta_b -. 1.) < 1e-9
        | _ -> true);
    Test.make ~name:"fuzz: anomalies only from crashes or late reveals"
      ~count:150 arb (fun scenario ->
        let r = run_scenario scenario in
        let _, _, _, reveal_delay, alice_off, bob_off, _, _ = scenario in
        match r.Swap.Protocol.outcome with
        | Swap.Protocol.Anomalous _ ->
          reveal_delay > 0. || alice_off <> None || bob_off <> None
        | _ -> true);
    Test.make
      ~name:"fuzz: crash anomaly exactly iff bob dies in (t2, t4]" ~count:200
      (pair bool (float_range 0. 12.))
      (fun (bob_crashes, t) ->
        let r =
          if bob_crashes then Swap.Protocol.run ~bob_offline_from:t p ~p_star:2.
          else Swap.Protocol.run ~alice_offline_from:t p ~p_star:2.
        in
        let anomalous =
          match r.Swap.Protocol.outcome with
          | Swap.Protocol.Anomalous _ -> true
          | _ -> false
        in
        (* Tokens are only redistributed, crash or no crash... *)
        abs_float (r.Swap.Protocol.alice_delta_a +. r.Swap.Protocol.bob_delta_a)
        < 1e-9
        && abs_float
             (r.Swap.Protocol.alice_delta_b +. r.Swap.Protocol.bob_delta_b)
           < 1e-9
        (* ...and the Zakhary window is sharp: Bob offline strictly after
           his lock (t2 = 3) through his claim time (t4 = 8) — and only
           that — breaks atomicity on the ideal schedule. *)
        && anomalous = (bob_crashes && t > 3. && t <= 8.));
  ]

let () =
  Alcotest.run "protocol"
    [
      ( "agent",
        [
          Alcotest.test_case "rational matches cutoffs" `Quick
            test_rational_policy_matches_cutoffs;
          Alcotest.test_case "rejects bad rates" `Quick
            test_rational_rejects_bad_rate;
          Alcotest.test_case "honest and myopic" `Quick test_honest_and_myopic;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "success matches Table I" `Quick
            test_protocol_success_table1;
          Alcotest.test_case "aborts are atomic" `Quick
            test_protocol_abort_paths_are_atomic;
          Alcotest.test_case "late reveal fails safe" `Quick
            test_protocol_late_reveal_fails_safe;
          Alcotest.test_case "collateral success is neutral" `Quick
            test_protocol_collateral_success_neutral;
          Alcotest.test_case "collateral punishes bob" `Quick
            test_protocol_collateral_punishes_bob;
          Alcotest.test_case "collateral punishes alice" `Quick
            test_protocol_collateral_punishes_alice;
          Alcotest.test_case "price path drives decisions" `Quick
            test_protocol_on_price_path;
          Alcotest.test_case "bob deviations caught" `Quick
            test_protocol_bob_deviations_caught;
          Alcotest.test_case "marginal expiry tolerated" `Quick
            test_protocol_marginal_early_expiry_tolerated;
          Alcotest.test_case "trace and receipts" `Quick
            test_protocol_trace_and_receipts;
        ] );
      ( "crash",
        [
          Alcotest.test_case "alice crashes atomically" `Quick
            test_crash_alice_is_atomic;
          Alcotest.test_case "bob crash violates atomicity" `Quick
            test_crash_bob_after_lock_violates_atomicity;
          Alcotest.test_case "early bob crash is atomic" `Quick
            test_crash_bob_early_is_atomic;
          Alcotest.test_case "transient outage, back before t4" `Quick
            test_transient_outage_back_before_t4;
          Alcotest.test_case "transient outage, late without slack" `Quick
            test_transient_outage_back_too_late_without_slack;
          Alcotest.test_case "slack buys recovery" `Quick
            test_transient_outage_slack_buys_recovery;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "retries flip failures, never successes" `Quick
            test_retry_flips_outcomes;
          Alcotest.test_case "deterministic under faults" `Quick
            test_protocol_deterministic_under_faults;
          Alcotest.test_case "faultless telemetry baseline" `Quick
            test_telemetry_faultless_baseline;
        ] );
      ( "ac3",
        [
          Alcotest.test_case "happy path matches Table I" `Quick
            test_ac3_happy_path_table1;
          Alcotest.test_case "survives agent crashes" `Quick
            test_ac3_survives_agent_crashes;
          Alcotest.test_case "witness crash fails atomically" `Quick
            test_ac3_witness_crash_fails_atomically;
          Alcotest.test_case "SR equals alice-committed regime" `Quick
            test_ac3_sr_equals_alice_committed_regime;
          Alcotest.test_case "SR dominates HTLC" `Quick
            test_ac3_sr_dominates_htlc;
          Alcotest.test_case "rational policy declines bad price" `Quick
            test_ac3_rational_policy_declines_bad_price;
        ] );
      ( "ac3wn",
        [
          Alcotest.test_case "happy path" `Quick test_ac3wn_happy_path;
          Alcotest.test_case "survives any single crash" `Quick
            test_ac3wn_survives_any_single_crash;
          Alcotest.test_case "all-crash fails atomically" `Quick
            test_ac3wn_all_crash_fails_atomically;
          Alcotest.test_case "latency premium" `Quick
            test_ac3wn_latency_premium;
          Alcotest.test_case "same strategic SR" `Quick
            test_ac3wn_same_strategic_sr;
        ] );
      ( "margins",
        [
          Alcotest.test_case "zero slack = baseline" `Quick
            test_margins_zero_reduces_to_baseline;
          Alcotest.test_case "slack hurts everyone" `Quick
            test_margins_slack_hurts_everyone;
          Alcotest.test_case "SR monotone in slack" `Quick
            test_margins_monotone_in_slack;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "matches Eq. 31" `Slow test_mc_matches_analytic;
          Alcotest.test_case "matches Eq. 40" `Slow
            test_mc_collateral_matches_analytic;
          Alcotest.test_case "honest agents always succeed" `Quick
            test_mc_honest_always_succeeds;
          Alcotest.test_case "deterministic by seed" `Quick
            test_mc_deterministic_given_seed;
          Alcotest.test_case "myopic underperforms" `Slow
            test_mc_myopic_underperforms;
          Alcotest.test_case "jump-variance direction" `Slow
            test_mc_jump_sampler_direction;
          Alcotest.test_case "utility samples consistent" `Slow
            test_mc_utility_samples_consistent;
        ] );
      ( "multihop",
        [
          Alcotest.test_case "happy path (4 parties)" `Quick
            test_multihop_happy_path;
          Alcotest.test_case "aborts refund everyone" `Quick
            test_multihop_abort_refunds_everyone;
          Alcotest.test_case "staggered deadlines" `Quick
            test_multihop_expiry_schedule_staggered;
          Alcotest.test_case "SR decays with parties" `Slow
            test_multihop_sr_decays_with_parties;
          Alcotest.test_case "mid-cascade crash strands one party" `Quick
            test_multihop_crash_mid_cascade_strands_one_party;
        ] );
      ("fuzz", List.map QCheck_alcotest.to_alcotest fuzz_tests);
      ( "lattice_game",
        [
          Alcotest.test_case "converges to analytic" `Slow
            test_lattice_game_converges;
          Alcotest.test_case "refinement reduces error" `Slow
            test_lattice_game_refinement_improves;
          Alcotest.test_case "rejects infeasible rate" `Quick
            test_lattice_game_rejects_infeasible_rate;
          Alcotest.test_case "collateral cross-check (Eq. 34/40)" `Slow
            test_lattice_game_collateral_cross_check;
          Alcotest.test_case "game tree validates" `Quick
            test_lattice_game_tree_is_valid;
        ] );
    ]
