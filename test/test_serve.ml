(* The serve subsystem: codec round-trips and golden encodings, the
   error taxonomy, cache hit/eviction semantics, admission control and
   deadlines (driven deterministically on worker-less engines via
   [pump]), the jobs-invariance byte-identity guard, and a live
   socket-transport round trip. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* A 2x2 quote grid keeps engine construction cheap; every engine in
   this file must use the same grid or byte-identity comparisons would
   be meaningless. *)
let mus = [| -0.01; 0.01 |]
let sigmas = [| 0.05; 0.1 |]
let make_engine ?workers ?queue_capacity ?deadline_s () =
  Serve.Engine.create ?workers ?queue_capacity ?deadline_s ~mus ~sigmas ()

(* --- codec --------------------------------------------------------------- *)

let test_codec_golden () =
  (* The canonical bytes are the cache key and the wire format: pin them
     exactly so neither field order nor float formatting can drift. *)
  (* 0.125 is exactly representable, so the %.17g round-trip format
     prints it short and the golden stays readable. *)
  let req =
    {
      Serve.Request.id = Some "r1";
      body = Serve.Request.Quote { mu = 0.; sigma = 0.125; spot = 2. };
    }
  in
  check_str "canonical quote encoding"
    "{\"schema\":\"htlc-serve/v1\",\"id\":\"r1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.125,\"spot\":2}"
    (Serve.Request.encode req);
  check_str "key drops the id only"
    "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.125,\"spot\":2}"
    (Serve.Request.key req);
  let sweep =
    {
      Serve.Request.id = None;
      body =
        Serve.Request.Sweep
          {
            params = Swap.Params.defaults;
            q = 0.25;
            spec = { lo = 1.6; hi = 2.4; n = 5 };
          };
    }
  in
  check_bool "sweep encoding carries params and spec" true
    (contains (Serve.Request.encode sweep)
       "\"req\":\"sweep\",\"params\":{\"alpha_a\":")

let roundtrip line =
  match Serve.Request.decode line with
  | Ok req -> Serve.Request.encode req
  | Error e -> Alcotest.failf "decode %S failed: %s" line e.message

let test_codec_roundtrip () =
  let bodies =
    [
      Serve.Request.Cutoffs { params = Swap.Params.defaults; p_star = 2. };
      Serve.Request.Success_rate
        { params = Swap.Params.defaults; p_star = 2.; q = 0.25 };
      Serve.Request.Sweep
        {
          params = Swap.Params.defaults;
          q = 0.;
          spec = { lo = 1.6; hi = 2.4; n = 7 };
        };
      Serve.Request.Quote { mu = 0.003; sigma = 0.07; spot = 1.9 };
    ]
  in
  List.iteri
    (fun i body ->
      let t = { Serve.Request.id = Some (Printf.sprintf "id%d" i); body } in
      let line = Serve.Request.encode t in
      check_str (Printf.sprintf "decode . encode fixpoint #%d" i) line
        (roundtrip line))
    bodies;
  (* Client field order and whitespace do not affect the canonical key. *)
  let a =
    Serve.Request.decode
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0.0,\"sigma\":0.05,\"spot\":2.0,\"id\":\"x\"}"
  and b =
    Serve.Request.decode
      "{ \"id\":\"y\", \"spot\":2, \"sigma\":0.05, \"mu\":0, \"req\":\"quote\", \"schema\":\"htlc-serve/v1\" }"
  in
  match (a, b) with
  | Ok a, Ok b ->
    check_str "reordered requests share one cache key"
      (Serve.Request.key a) (Serve.Request.key b)
  | _ -> Alcotest.fail "both reorderings must decode"

let decode_err line =
  match Serve.Request.decode line with
  | Ok _ -> Alcotest.failf "decode %S unexpectedly succeeded" line
  | Error e -> e

let test_codec_errors () =
  let e = decode_err "this is not json" in
  check_str "garbage is a parse error" "parse_error" e.Serve.Request.code;
  check_bool "no id recovered from garbage" true (e.Serve.Request.err_id = None);
  let e =
    decode_err "{\"schema\":\"htlc-serve/v2\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.05,\"spot\":2}"
  in
  check_str "wrong schema version" "parse_error" e.Serve.Request.code;
  let e =
    decode_err "{\"schema\":\"htlc-serve/v1\",\"id\":\"k\",\"req\":\"frobnicate\"}"
  in
  check_str "unknown req" "parse_error" e.Serve.Request.code;
  check_bool "id recovered from a rejected request" true
    (e.Serve.Request.err_id = Some "k");
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"d\",\"req\":\"quote\",\"mu\":0,\"mu\":0.1,\"sigma\":0.05,\"spot\":2}"
  in
  check_str "duplicate key is a parse error (strict decoding)" "parse_error"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":-2}"
  in
  check_str "non-positive p_star" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":5,\"nn\":1}"
  in
  check_str "unknown key is rejected, not ignored" "invalid_params"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":1}"
  in
  check_str "sweep needs n >= 2" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2,\"q\":-0.1}"
  in
  check_str "negative collateral" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2,\"params\":{\"sigma\":-1}}"
  in
  check_str "params are validated" "invalid_params" e.Serve.Request.code

(* --- cache --------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Serve.Cache.create ~shards:2 ~capacity:8 () in
  check_bool "empty miss" true (Serve.Cache.find c "k1" = None);
  Serve.Cache.add c "k1" "v1";
  check_bool "hit after add" true (Serve.Cache.find c "k1" = Some "v1");
  Serve.Cache.add c "k1" "clobber";
  check_bool "incumbent value wins a racing add" true
    (Serve.Cache.find c "k1" = Some "v1");
  let s = Serve.Cache.stats c in
  check_int "hits" 2 s.Serve.Cache.hits;
  check_int "misses" 1 s.Serve.Cache.misses;
  check_int "no evictions below capacity" 0 s.Serve.Cache.evictions;
  Serve.Cache.clear c;
  check_int "clear empties every shard" 0 (Serve.Cache.length c)

let test_cache_second_chance () =
  (* One shard makes eviction order deterministic: a full shard evicts
     the first entry in arrival order whose referenced bit is unset, and
     the sweep clears bits as it passes. *)
  let c = Serve.Cache.create ~shards:1 ~capacity:4 () in
  List.iter (fun k -> Serve.Cache.add c k ("v" ^ k)) [ "a"; "b"; "c"; "d" ];
  ignore (Serve.Cache.find c "a");
  (* [a] is referenced. *)
  Serve.Cache.add c "e" "ve";
  (* Clock sweep: skips [a] (clearing its bit), evicts [b]. *)
  check_bool "recently-hit entry survives" true
    (Serve.Cache.find c "a" = Some "va");
  check_bool "oldest unreferenced entry evicted" true
    (Serve.Cache.find c "b" = None);
  check_bool "newcomer present" true (Serve.Cache.find c "e" = Some "ve");
  let s = Serve.Cache.stats c in
  check_int "exactly one eviction" 1 s.Serve.Cache.evictions;
  check_int "length stays at capacity" 4 (Serve.Cache.length c)

let test_cache_capacity_bound () =
  let c = Serve.Cache.create ~shards:4 ~capacity:16 () in
  for i = 1 to 200 do
    Serve.Cache.add c (Printf.sprintf "key%d" i) "v"
  done;
  check_bool "length bounded by capacity under churn" true
    (Serve.Cache.length c <= Serve.Cache.capacity c);
  check_bool "eviction counter moved" true
    ((Serve.Cache.stats c).Serve.Cache.evictions > 0);
  (match Serve.Cache.create ~shards:0 () with
  | _ -> Alcotest.fail "shards = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Serve.Cache.create ~shards:8 ~capacity:4 () with
  | _ -> Alcotest.fail "capacity < shards must be rejected"
  | exception Invalid_argument _ -> ()

(* --- engine -------------------------------------------------------------- *)

let test_engine_handle () =
  let e = make_engine ~workers:0 () in
  let ok line frag =
    let resp = Serve.Engine.handle e line in
    check_bool (Printf.sprintf "ok response for %s" frag) true
      (contains resp "\"status\":\"ok\"" && contains resp frag)
  in
  ok "{\"schema\":\"htlc-serve/v1\",\"id\":\"a\",\"req\":\"cutoffs\",\"p_star\":2}"
    "\"p_t3_low\":";
  ok "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2}"
    "\"sr\":";
  ok "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}"
    "\"p_star\":";
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0.5,\"sigma\":0.075,\"spot\":2}"
  in
  check_bool "off-grid quote is a structured error" true
    (contains resp "\"error\":\"outside_grid\"");
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":-1}"
  in
  check_bool "non-positive spot is its own code" true
    (contains resp "\"error\":\"non_positive_spot\"");
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":100000}"
  in
  check_bool "sweep size is capped" true
    (contains resp "\"error\":\"invalid_params\"");
  let s = Serve.Engine.stats e in
  check_int "requests counted" 6 s.Serve.Engine.requests;
  check_int "ok bodies" 3 s.Serve.Engine.ok;
  check_int "error bodies" 3 s.Serve.Engine.errors;
  Serve.Engine.stop e

let test_engine_cache_identity () =
  let e = make_engine ~workers:0 () in
  let line id =
    Printf.sprintf
      "{\"schema\":\"htlc-serve/v1\",\"id\":%s,\"req\":\"success_rate\",\"p_star\":2}"
      id
  in
  let r1 = Serve.Engine.handle e (line "\"x\"") in
  let r2 = Serve.Engine.handle e (line "\"y\"") in
  let strip_to_req s =
    match String.index_opt s ',' with
    | None -> s
    | Some _ ->
      let marker = "\"req\"" in
      let rec find i =
        if i >= String.length s then s
        else if
          i + String.length marker <= String.length s
          && String.sub s i (String.length marker) = marker
        then String.sub s i (String.length s - i)
        else find (i + 1)
      in
      find 0
  in
  check_str "cached repeat is byte-identical after the id"
    (strip_to_req r1) (strip_to_req r2);
  check_bool "ids differ" true (r1 <> r2);
  let s = Serve.Engine.stats e in
  check_int "second answer came from the cache"
    1 s.Serve.Engine.cache.Serve.Cache.hits;
  Serve.Engine.stop e

let test_engine_shed_and_pump () =
  let e = make_engine ~workers:0 ~queue_capacity:2 () in
  let line id =
    Printf.sprintf
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"%s\",\"req\":\"success_rate\",\"p_star\":2}"
      id
  in
  let t1 =
    match Serve.Engine.submit e (line "a") with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "first submit must queue"
  in
  let t2 =
    match Serve.Engine.submit e (line "b") with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "second submit must queue"
  in
  (match Serve.Engine.submit e (line "c") with
  | `Done resp ->
    check_bool "third submit sheds with overloaded" true
      (contains resp "\"error\":\"overloaded\"")
  | `Ticket _ -> Alcotest.fail "full queue must shed");
  (match Serve.Engine.submit e "not json" with
  | `Done resp ->
    check_bool "parse errors answer immediately even when full" true
      (contains resp "\"error\":\"parse_error\"")
  | `Ticket _ -> Alcotest.fail "parse errors never queue");
  check_bool "pump runs one queued job" true (Serve.Engine.pump e);
  check_bool "pump runs the second" true (Serve.Engine.pump e);
  check_bool "queue now empty" false (Serve.Engine.pump e);
  check_bool "first ticket resolved ok" true
    (contains (Serve.Engine.await t1) "\"status\":\"ok\"");
  check_bool "second ticket resolved ok" true
    (contains (Serve.Engine.await t2) "\"id\":\"b\"");
  let s = Serve.Engine.stats e in
  check_int "one shed" 1 s.Serve.Engine.shed;
  check_int "one parse error" 1 s.Serve.Engine.parse_errors;
  Serve.Engine.stop e;
  match Serve.Engine.submit e (line "d") with
  | `Done resp ->
    check_bool "submit after stop sheds" true
      (contains resp "\"error\":\"overloaded\"")
  | `Ticket _ -> Alcotest.fail "stopped engine must not queue"

let test_engine_deadline () =
  let e = make_engine ~workers:0 ~deadline_s:0.005 () in
  let t =
    match
      Serve.Engine.submit e
        "{\"schema\":\"htlc-serve/v1\",\"id\":\"late\",\"req\":\"success_rate\",\"p_star\":2}"
    with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "submit must queue"
  in
  Unix.sleepf 0.02;
  check_bool "pump processes the stale job" true (Serve.Engine.pump e);
  let resp = Serve.Engine.await t in
  check_bool "stale job answered deadline_exceeded" true
    (contains resp "\"error\":\"deadline_exceeded\"");
  check_bool "id still echoed" true (contains resp "\"id\":\"late\"");
  check_int "counted" 1 (Serve.Engine.stats e).Serve.Engine.deadline_exceeded;
  Serve.Engine.stop e

let test_determinism_guard () =
  (* Two identically configured engines must produce byte-identical
     response arrays at jobs=1 and jobs=4 — the serve layer inherits the
     pool's determinism contract. *)
  let lines =
    Array.init 40 (fun i ->
        match i mod 4 with
        | 0 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"success_rate\",\"p_star\":%g}"
            i (1.8 +. (0.01 *. float_of_int (i / 4)))
        | 1 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"cutoffs\",\"p_star\":2}"
            i
        | 2 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}"
            i
        | _ -> Printf.sprintf "broken line %d" i)
  in
  let e1 = make_engine ~workers:0 () in
  let e2 = make_engine ~workers:0 () in
  let r1 = Serve.Engine.handle_batch ~jobs:1 e1 lines in
  let r2 = Serve.Engine.handle_batch ~jobs:4 e2 lines in
  check_bool "jobs=1 and jobs=4 responses are byte-identical" true (r1 = r2);
  (* And a warm re-run (every answer cached) is still identical. *)
  let r3 = Serve.Engine.handle_batch ~jobs:4 e1 lines in
  check_bool "cached responses are byte-identical too" true (r1 = r3);
  Serve.Engine.stop e1;
  Serve.Engine.stop e2

(* --- socket transport ---------------------------------------------------- *)

let test_socket_roundtrip () =
  let e = make_engine ~workers:2 () in
  let path = Printf.sprintf "/tmp/htlc-serve-test-%d.sock" (Unix.getpid ()) in
  let server = Serve.Server.listen e ~path () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  let lines =
    [
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s2\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}";
      "definitely not json";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
    ]
  in
  (* The reference: a worker-less engine with the same configuration,
     answering the same lines directly. *)
  let reference = make_engine ~workers:0 () in
  List.iteri
    (fun i line ->
      check_str
        (Printf.sprintf "socket response #%d is byte-identical to direct" i)
        (Serve.Engine.handle reference line)
        (ask line))
    lines;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Serve.Server.shutdown server;
  Serve.Server.shutdown server;
  (* Idempotent. *)
  check_bool "socket path unlinked on shutdown" false (Sys.file_exists path);
  Serve.Engine.stop e;
  Serve.Engine.stop reference

(* --- quote table reasons -------------------------------------------------- *)

let test_quote_table_reasons () =
  let table = Market.Quote_table.build ~mus ~sigmas Swap.Params.defaults in
  (match Market.Quote_table.lookup table ~mu:0. ~sigma:0.075 ~spot:2. with
  | Ok q -> check_bool "in-grid quote positive" true (q.Market.Quote_table.p_star > 0.)
  | Error _ -> Alcotest.fail "in-grid lookup must quote");
  (match Market.Quote_table.lookup table ~mu:0.5 ~sigma:0.075 ~spot:2. with
  | Error Market.Quote_table.Outside_grid -> ()
  | _ -> Alcotest.fail "off-grid mu must report Outside_grid");
  (match Market.Quote_table.lookup table ~mu:0. ~sigma:0.075 ~spot:0. with
  | Error Market.Quote_table.Non_positive_spot -> ()
  | _ -> Alcotest.fail "zero spot must report Non_positive_spot");
  check_int "no infeasible nodes on this grid" 0
    (Market.Quote_table.gaps table);
  check_bool "grid size" true (Market.Quote_table.nodes table = (2, 2))

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "golden encodings" `Quick test_codec_golden;
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "error taxonomy" `Quick test_codec_errors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/incumbent" `Quick test_cache_hit_miss;
          Alcotest.test_case "second chance" `Quick test_cache_second_chance;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity_bound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "handle + dispatch" `Quick test_engine_handle;
          Alcotest.test_case "cache identity" `Quick test_engine_cache_identity;
          Alcotest.test_case "shed + pump" `Quick test_engine_shed_and_pump;
          Alcotest.test_case "deadline" `Quick test_engine_deadline;
          Alcotest.test_case "jobs invariance" `Quick test_determinism_guard;
        ] );
      ( "transport",
        [ Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip ] );
      ( "quote-table",
        [ Alcotest.test_case "reasons + gaps" `Quick test_quote_table_reasons ] );
    ]
