(* The serve subsystem: codec round-trips and golden encodings, the
   error taxonomy, cache hit/eviction semantics, admission control and
   deadlines (driven deterministically on worker-less engines via
   [pump]), the jobs-invariance byte-identity guard, and a live
   socket-transport round trip. *)

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_str = check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* A 2x2 quote grid keeps engine construction cheap; every engine in
   this file must use the same grid or byte-identity comparisons would
   be meaningless. *)
let mus = [| -0.01; 0.01 |]
let sigmas = [| 0.05; 0.1 |]
let make_engine ?workers ?queue_capacity ?deadline_s () =
  Serve.Engine.create ?workers ?queue_capacity ?deadline_s ~mus ~sigmas ()

(* --- codec --------------------------------------------------------------- *)

let test_codec_golden () =
  (* The canonical bytes are the cache key and the wire format: pin them
     exactly so neither field order nor float formatting can drift. *)
  (* 0.125 is exactly representable, so the %.17g round-trip format
     prints it short and the golden stays readable. *)
  let req =
    {
      Serve.Request.id = Some "r1";
      body = Serve.Request.Quote { mu = 0.; sigma = 0.125; spot = 2. };
    }
  in
  check_str "canonical quote encoding"
    "{\"schema\":\"htlc-serve/v1\",\"id\":\"r1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.125,\"spot\":2}"
    (Serve.Request.encode req);
  check_str "key drops the id only"
    "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.125,\"spot\":2}"
    (Serve.Request.key req);
  let sweep =
    {
      Serve.Request.id = None;
      body =
        Serve.Request.Sweep
          {
            params = Swap.Params.defaults;
            q = 0.25;
            spec = { lo = 1.6; hi = 2.4; n = 5 };
          };
    }
  in
  check_bool "sweep encoding carries params and spec" true
    (contains (Serve.Request.encode sweep)
       "\"req\":\"sweep\",\"params\":{\"alpha_a\":");
  let route =
    {
      Serve.Request.id = Some "rt";
      body =
        Serve.Request.Route
          { from_tok = "BTC"; to_tok = "USDC"; max_hops = 4 };
    }
  in
  check_str "canonical route encoding"
    "{\"schema\":\"htlc-serve/v1\",\"id\":\"rt\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"USDC\",\"max_hops\":4}"
    (Serve.Request.encode route);
  check_str "route key drops the id only"
    "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"USDC\",\"max_hops\":4}"
    (Serve.Request.key route)

let roundtrip line =
  match Serve.Request.decode line with
  | Ok req -> Serve.Request.encode req
  | Error e -> Alcotest.failf "decode %S failed: %s" line e.message

let test_codec_roundtrip () =
  let bodies =
    [
      Serve.Request.Cutoffs { params = Swap.Params.defaults; p_star = 2. };
      Serve.Request.Success_rate
        { params = Swap.Params.defaults; p_star = 2.; q = 0.25 };
      Serve.Request.Sweep
        {
          params = Swap.Params.defaults;
          q = 0.;
          spec = { lo = 1.6; hi = 2.4; n = 7 };
        };
      Serve.Request.Quote { mu = 0.003; sigma = 0.07; spot = 1.9 };
      Serve.Request.Route { from_tok = "XMR"; to_tok = "ETH"; max_hops = 3 };
    ]
  in
  List.iteri
    (fun i body ->
      let t = { Serve.Request.id = Some (Printf.sprintf "id%d" i); body } in
      let line = Serve.Request.encode t in
      check_str (Printf.sprintf "decode . encode fixpoint #%d" i) line
        (roundtrip line))
    bodies;
  (* Client field order and whitespace do not affect the canonical key. *)
  let a =
    Serve.Request.decode
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0.0,\"sigma\":0.05,\"spot\":2.0,\"id\":\"x\"}"
  and b =
    Serve.Request.decode
      "{ \"id\":\"y\", \"spot\":2, \"sigma\":0.05, \"mu\":0, \"req\":\"quote\", \"schema\":\"htlc-serve/v1\" }"
  in
  match (a, b) with
  | Ok a, Ok b ->
    check_str "reordered requests share one cache key"
      (Serve.Request.key a) (Serve.Request.key b)
  | _ -> Alcotest.fail "both reorderings must decode"

let decode_err line =
  match Serve.Request.decode line with
  | Ok _ -> Alcotest.failf "decode %S unexpectedly succeeded" line
  | Error e -> e

let test_codec_errors () =
  let e = decode_err "this is not json" in
  check_str "garbage is a parse error" "parse_error" e.Serve.Request.code;
  check_bool "no id recovered from garbage" true (e.Serve.Request.err_id = None);
  let e =
    decode_err "{\"schema\":\"htlc-serve/v2\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.05,\"spot\":2}"
  in
  check_str "wrong schema version" "parse_error" e.Serve.Request.code;
  let e =
    decode_err "{\"schema\":\"htlc-serve/v1\",\"id\":\"k\",\"req\":\"frobnicate\"}"
  in
  check_str "unknown req" "parse_error" e.Serve.Request.code;
  check_bool "id recovered from a rejected request" true
    (e.Serve.Request.err_id = Some "k");
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"d\",\"req\":\"quote\",\"mu\":0,\"mu\":0.1,\"sigma\":0.05,\"spot\":2}"
  in
  check_str "duplicate key is a parse error (strict decoding)" "parse_error"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":-2}"
  in
  check_str "non-positive p_star" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":5,\"nn\":1}"
  in
  check_str "unknown key is rejected, not ignored" "invalid_params"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":1}"
  in
  check_str "sweep needs n >= 2" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2,\"q\":-0.1}"
  in
  check_str "negative collateral" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2,\"params\":{\"sigma\":-1}}"
  in
  check_str "params are validated" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"BTC\",\"max_hops\":4}"
  in
  check_str "route tokens must differ" "invalid_params" e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"\",\"to\":\"ETH\",\"max_hops\":4}"
  in
  check_str "route rejects an empty token" "invalid_params"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"ETH\",\"max_hops\":0}"
  in
  check_str "route hop bound must be >= 1" "invalid_params"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"ETH\",\"max_hops\":2.5}"
  in
  check_str "route hop bound must be integral" "invalid_params"
    e.Serve.Request.code;
  let e =
    decode_err
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"ETH\",\"via\":\"SOL\"}"
  in
  check_str "route rejects unknown keys" "invalid_params"
    e.Serve.Request.code

let test_decode_fastpath_agreement () =
  (* The canonical scanner and the general JSON parser must agree: for
     every kind, the canonical encoding (fast path) and a reordered,
     whitespace-padded spelling of the same request (slow path) decode
     to the same cache key. *)
  let canonical_and_sloppy =
    [
      ( "{\"schema\":\"htlc-serve/v1\",\"id\":\"a\",\"req\":\"cutoffs\",\"p_star\":2}",
        "{ \"p_star\": 2.0, \"req\": \"cutoffs\", \"id\": \"a\", \"schema\": \"htlc-serve/v1\" }"
      );
      ( "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":1.9,\"q\":0.25}",
        "{\"q\":0.25, \"p_star\":1.9, \"req\":\"success_rate\", \"schema\":\"htlc-serve/v1\"}"
      );
      ( "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"q\":0,\"lo\":1.6,\"hi\":2.4,\"n\":5}",
        "{\"n\":5, \"hi\":2.4, \"lo\":1.6, \"q\":0.0, \"req\":\"sweep\", \"schema\":\"htlc-serve/v1\"}"
      );
      ( "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}",
        "{\"spot\":2e0, \"sigma\":7.5e-2, \"mu\":0, \"req\":\"quote\", \"schema\":\"htlc-serve/v1\"}"
      );
      ( "{\"schema\":\"htlc-serve/v1\",\"id\":\"h\",\"req\":\"health\"}",
        "{ \"req\":\"health\", \"id\":\"h\", \"schema\":\"htlc-serve/v1\" }" );
      ( "{\"schema\":\"htlc-serve/v1\",\"req\":\"route\",\"from\":\"BTC\",\"to\":\"ETH\",\"max_hops\":4}",
        "{\"max_hops\":4, \"to\":\"ETH\", \"from\":\"BTC\", \"req\":\"route\", \"schema\":\"htlc-serve/v1\"}"
      );
    ]
  in
  List.iteri
    (fun i (fast, slow) ->
      match (Serve.Request.decode fast, Serve.Request.decode slow) with
      | Ok a, Ok b ->
        check_str
          (Printf.sprintf "fast and slow paths agree on key #%d" i)
          (Serve.Request.key a) (Serve.Request.key b);
        (* The canonical re-encoding (params spelled out) must decode —
           through the general parser — back to the same key. *)
        (match Serve.Request.decode (Serve.Request.encode a) with
        | Ok c ->
          check_str
            (Printf.sprintf "re-encoded request keeps the key #%d" i)
            (Serve.Request.key a) (Serve.Request.key c)
        | Error e ->
          Alcotest.failf "re-encoding #%d must decode: %s" i e.message)
      | _ -> Alcotest.failf "pair #%d must decode on both paths" i)
    canonical_and_sloppy;
  (* A request with an explicit params object never takes the fast path;
     spelling the defaults out must still share the defaults key. *)
  let explicit =
    "{\"schema\":\"htlc-serve/v1\",\"req\":\"cutoffs\",\"params\":"
    ^ Serve.Request.params_json Swap.Params.defaults
    ^ ",\"p_star\":2}"
  and implicit = "{\"schema\":\"htlc-serve/v1\",\"req\":\"cutoffs\",\"p_star\":2}" in
  match (Serve.Request.decode explicit, Serve.Request.decode implicit) with
  | Ok a, Ok b ->
    check_str "explicit defaults share the implicit key"
      (Serve.Request.key b) (Serve.Request.key a)
  | _ -> Alcotest.fail "both spellings must decode"

(* --- binary codec (htlc-serve/b1) ---------------------------------------- *)

let f64_be x =
  let bits = Int64.bits_of_float x in
  String.init 8 (fun i ->
      Char.chr
        (Int64.to_int (Int64.logand (Int64.shift_right_logical bits ((7 - i) * 8)) 0xFFL)))

let test_binary_golden () =
  (* Pin the wire bytes exactly: kind tag, flags, id block, fields. *)
  let health = { Serve.Request.id = Some "h"; body = Serve.Request.Health } in
  check_str "health payload" "\x05\x01\x00\x01h"
    (Serve.Binary.encode_payload health);
  check_str "framed health request" "\x00\x00\x00\x05\x05\x01\x00\x01h"
    (Serve.Binary.encode_request health);
  let cutoffs =
    {
      Serve.Request.id = None;
      body = Serve.Request.Cutoffs { params = Swap.Params.defaults; p_star = 2. };
    }
  in
  (* Defaults params travel as "omitted": flags bit1 clear, 10 bytes total. *)
  check_str "cutoffs payload (defaults omitted)"
    ("\x01\x00" ^ f64_be 2.)
    (Serve.Binary.encode_payload cutoffs);
  let quote =
    {
      Serve.Request.id = Some "r1";
      body = Serve.Request.Quote { mu = 0.; sigma = 0.125; spot = 2. };
    }
  in
  check_str "quote payload"
    ("\x04\x01\x00\x02r1" ^ f64_be 0. ^ f64_be 0.125 ^ f64_be 2.)
    (Serve.Binary.encode_payload quote);
  let sweep =
    {
      Serve.Request.id = None;
      body =
        Serve.Request.Sweep
          {
            params = Swap.Params.defaults;
            q = 0.25;
            spec = { lo = 1.6; hi = 2.4; n = 9 };
          };
    }
  in
  (* u32 n is the last field — the torn-cursor regression case. *)
  check_str "sweep payload"
    ("\x03\x00" ^ f64_be 0.25 ^ f64_be 1.6 ^ f64_be 2.4 ^ "\x00\x00\x00\x09")
    (Serve.Binary.encode_payload sweep);
  let route =
    {
      Serve.Request.id = Some "r";
      body =
        Serve.Request.Route { from_tok = "BTC"; to_tok = "ETH"; max_hops = 4 };
    }
  in
  (* Tag 7, id block, then u16-length-prefixed tokens and a u8 bound. *)
  check_str "route payload" "\x07\x01\x00\x01r\x00\x03BTC\x00\x03ETH\x04"
    (Serve.Binary.encode_payload route)

let test_binary_roundtrip () =
  let custom =
    { Swap.Params.defaults with sigma = 0.11; p0 = 1.7 }
  in
  let bodies =
    [
      Serve.Request.Cutoffs { params = Swap.Params.defaults; p_star = 2. };
      Serve.Request.Cutoffs { params = custom; p_star = 1.8 };
      Serve.Request.Success_rate
        { params = Swap.Params.defaults; p_star = 2.; q = 0.25 };
      Serve.Request.Sweep
        {
          params = custom;
          q = 0.1;
          spec = { lo = 1.6; hi = 2.4; n = 7 };
        };
      Serve.Request.Quote { mu = 0.003; sigma = 0.07; spot = 1.9 };
      Serve.Request.Route { from_tok = "XMR"; to_tok = "USDC"; max_hops = 5 };
      Serve.Request.Health;
    ]
  in
  List.iteri
    (fun i body ->
      let id = if i mod 2 = 0 then Some (Printf.sprintf "b%d" i) else None in
      let t = { Serve.Request.id; body } in
      match Serve.Binary.decode_payload (Serve.Binary.encode_payload t) with
      | Ok t' ->
        check_bool (Printf.sprintf "binary roundtrip #%d" i) true (t = t');
        check_str
          (Printf.sprintf "binary and JSON decode share the key #%d" i)
          (Serve.Request.key t) (Serve.Request.key t')
      | Error e -> Alcotest.failf "roundtrip #%d rejected: %s" i e.message)
    bodies;
  (* Omitted params must decode to the physically shared defaults so the
     memoised key fast path applies to wire-decoded requests too. *)
  let t =
    {
      Serve.Request.id = None;
      body = Serve.Request.Cutoffs { params = Swap.Params.defaults; p_star = 2. };
    }
  in
  match Serve.Binary.decode_payload (Serve.Binary.encode_payload t) with
  | Ok { body = Serve.Request.Cutoffs { params; _ }; _ } ->
    check_bool "decoded defaults are physically shared" true
      (params == Swap.Params.defaults)
  | _ -> Alcotest.fail "cutoffs must roundtrip"

let bin_err payload =
  match Serve.Binary.decode_payload payload with
  | Ok _ -> Alcotest.failf "payload unexpectedly decoded"
  | Error e -> e

let test_binary_errors () =
  (* Malformed bytes are parse_error; out-of-domain values are
     invalid_params — the same taxonomy the JSON codec answers. *)
  let e = bin_err "" in
  check_str "empty payload" "parse_error" e.Serve.Request.code;
  let e = bin_err "\x09\x00" in
  check_str "unknown kind tag" "parse_error" e.Serve.Request.code;
  let e = bin_err "\x01\x04" in
  check_str "unknown flags" "parse_error" e.Serve.Request.code;
  let e = bin_err "\x01\x00\x40\x00" in
  check_str "truncated field" "parse_error" e.Serve.Request.code;
  let e = bin_err ("\x01\x00" ^ f64_be 2. ^ "junk") in
  check_str "trailing bytes" "parse_error" e.Serve.Request.code;
  let e = bin_err ("\x04\x02" ^ f64_be 0. ^ f64_be 0.05 ^ f64_be 2.) in
  check_str "quote refuses a params block" "parse_error" e.Serve.Request.code;
  let e = bin_err ("\x01\x01\x00\x01k" ^ f64_be (-2.)) in
  check_str "negative p_star" "invalid_params" e.Serve.Request.code;
  check_bool "id recovered from a rejected payload" true
    (e.Serve.Request.err_id = Some "k");
  let e =
    bin_err
      ("\x03\x00" ^ f64_be 0. ^ f64_be 1.6 ^ f64_be 2.4 ^ "\x00\x00\x00\x01")
  in
  check_str "sweep needs n >= 2" "invalid_params" e.Serve.Request.code;
  let e = bin_err ("\x01\x00" ^ f64_be Float.nan) in
  check_str "non-finite field" "invalid_params" e.Serve.Request.code;
  let e = bin_err "\x07\x02\x00\x03BTC\x00\x03ETH\x04" in
  check_str "route refuses a params block" "parse_error" e.Serve.Request.code;
  let e = bin_err "\x07\x00\x00\x03BTC\x00\x03BTC\x04" in
  check_str "route tokens must differ (binary)" "invalid_params"
    e.Serve.Request.code;
  let e = bin_err "\x07\x00\x00\x03BTC\x00\x03ETH\x00" in
  check_str "route hop bound must be >= 1 (binary)" "invalid_params"
    e.Serve.Request.code;
  let e = bin_err "\x07\x00\x00\x05BT" in
  check_str "truncated route token" "parse_error" e.Serve.Request.code

let test_binary_incremental () =
  (* The incremental decoder must reassemble frames identically no
     matter how the bytes arrive: whole, byte-at-a-time, or in a
     deterministic pseudo-random chunk schedule. *)
  let payloads =
    List.init 32 (fun i ->
        Serve.Binary.encode_payload
          {
            Serve.Request.id = Some (Printf.sprintf "f%d" i);
            body =
              (if i mod 3 = 0 then
                 Serve.Request.Sweep
                   {
                     params = Swap.Params.defaults;
                     q = 0.;
                     spec = { lo = 1.6; hi = 2.4; n = 2 + i };
                   }
               else
                 Serve.Request.Quote
                   { mu = 0.; sigma = 0.05; spot = 1. +. (0.01 *. float_of_int i) });
          })
  in
  let stream = String.concat "" (List.map Serve.Binary.frame_response payloads) in
  let feed schedule =
    let buf = Serve.Iobuf.create () in
    let got = ref [] in
    let drain () =
      let rec go () =
        match Serve.Binary.decode_frame buf with
        | `Frame p ->
          got := p :: !got;
          go ()
        | `Need_more -> ()
        | `Too_large n -> Alcotest.failf "spurious Too_large %d" n
      in
      go ()
    in
    let pos = ref 0 in
    let state = ref schedule in
    while !pos < String.length stream do
      (* Chunk sizes 1..9 from a seeded LCG: deterministic, lint-clean. *)
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      let chunk = min (1 + (!state mod 9)) (String.length stream - !pos) in
      Serve.Iobuf.add_string buf (String.sub stream !pos chunk);
      pos := !pos + chunk;
      drain ()
    done;
    check_bool "no residual bytes" true (Serve.Iobuf.is_empty buf);
    List.rev !got
  in
  List.iter
    (fun seed ->
      check_bool
        (Printf.sprintf "chunked reassembly matches (seed %d)" seed)
        true
        (feed seed = payloads))
    [ 1; 7; 42; 1337 ];
  (* A partial frame is Need_more, never a frame and never an error. *)
  let buf = Serve.Iobuf.create () in
  Serve.Iobuf.add_string buf "\x00\x00\x00\x0a\x05\x00";
  check_bool "partial frame parks" true
    (Serve.Binary.decode_frame buf = `Need_more);
  check_int "partial frame left buffered" 6 (Serve.Iobuf.length buf);
  (* An oversized header is unrecoverable and reported as such. *)
  let buf = Serve.Iobuf.create () in
  Serve.Iobuf.add_string buf "\x7f\xff\xff\xff";
  match Serve.Binary.decode_frame buf with
  | `Too_large n -> check_int "oversized header reported" 0x7fffffff n
  | _ -> Alcotest.fail "oversized header must be Too_large"

let test_binary_socket_roundtrip () =
  let e = make_engine ~workers:0 () in
  let path = Printf.sprintf "/tmp/htlc-serve-bin-%d.sock" (Unix.getpid ()) in
  let server = Serve.Server.listen e ~path () in
  let reference = make_engine ~workers:0 () in
  let json_lines =
    [
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s2\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s3\",\"req\":\"quote\",\"mu\":0.9,\"sigma\":0.075,\"spot\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
    ]
  in
  let reqs =
    List.map
      (fun l ->
        match Serve.Request.decode l with
        | Ok r -> r
        | Error _ -> Alcotest.failf "test line must decode: %s" l)
      json_lines
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* One pipelined burst: magic, then every frame, then read them back. *)
  output_string oc Serve.Binary.magic;
  List.iter (fun r -> output_string oc (Serve.Binary.encode_request r)) reqs;
  flush oc;
  List.iteri
    (fun i line ->
      match Serve.Binary.input_frame ic with
      | Some body ->
        check_str
          (Printf.sprintf "binary response #%d byte-identical to direct" i)
          (Serve.Engine.handle reference line)
          body
      | None -> Alcotest.failf "server closed before response #%d" i)
    json_lines;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* A torn frame: header promising 20 bytes, only 5 sent, then EOF.
     The server must drop the connection without answering — and keep
     serving new connections. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc2 = Unix.out_channel_of_descr fd in
  output_string oc2 Serve.Binary.magic;
  output_string oc2 "\x00\x00\x00\x14\x05\x01\x00\x01h";
  flush oc2;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let ic2 = Unix.in_channel_of_descr fd in
  (match Serve.Binary.input_frame ic2 with
  | None -> ()
  | Some body -> Alcotest.failf "torn frame must not be answered, got %S" body);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* An oversized header: the server kills the connection immediately. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc3 = Unix.out_channel_of_descr fd in
  output_string oc3 Serve.Binary.magic;
  output_string oc3 "\x7f\xff\xff\xff";
  flush oc3;
  let ic3 = Unix.in_channel_of_descr fd in
  (match input_char ic3 with
  | _ -> Alcotest.fail "oversized header must close the connection"
  | exception End_of_file -> ()
  | exception Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* The server survived both protocol violations. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic4 = Unix.in_channel_of_descr fd in
  let oc4 = Unix.out_channel_of_descr fd in
  output_string oc4 Serve.Binary.magic;
  output_string oc4
    (Serve.Binary.encode_request
       { Serve.Request.id = Some "again"; body = Serve.Request.Health });
  flush oc4;
  (match Serve.Binary.input_frame ic4 with
  | Some body ->
    check_bool "server still serves after violations" true
      (contains body "\"status\":\"ok\"" && contains body "\"id\":\"again\"")
  | None -> Alcotest.fail "server must still answer after violations");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Serve.Server.shutdown server;
  Serve.Engine.stop e;
  Serve.Engine.stop reference

(* --- cache --------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Serve.Cache.create ~shards:2 ~capacity:8 () in
  check_bool "empty miss" true (Serve.Cache.find c "k1" = None);
  Serve.Cache.add c "k1" "v1";
  check_bool "hit after add" true (Serve.Cache.find c "k1" = Some "v1");
  Serve.Cache.add c "k1" "clobber";
  check_bool "incumbent value wins a racing add" true
    (Serve.Cache.find c "k1" = Some "v1");
  let s = Serve.Cache.stats c in
  check_int "hits" 2 s.Serve.Cache.hits;
  check_int "misses" 1 s.Serve.Cache.misses;
  check_int "no evictions below capacity" 0 s.Serve.Cache.evictions;
  Serve.Cache.clear c;
  check_int "clear empties every shard" 0 (Serve.Cache.length c)

let test_cache_second_chance () =
  (* One shard makes eviction order deterministic: a full shard evicts
     the first entry in arrival order whose referenced bit is unset, and
     the sweep clears bits as it passes. *)
  let c = Serve.Cache.create ~shards:1 ~capacity:4 () in
  List.iter (fun k -> Serve.Cache.add c k ("v" ^ k)) [ "a"; "b"; "c"; "d" ];
  ignore (Serve.Cache.find c "a");
  (* [a] is referenced. *)
  Serve.Cache.add c "e" "ve";
  (* Clock sweep: skips [a] (clearing its bit), evicts [b]. *)
  check_bool "recently-hit entry survives" true
    (Serve.Cache.find c "a" = Some "va");
  check_bool "oldest unreferenced entry evicted" true
    (Serve.Cache.find c "b" = None);
  check_bool "newcomer present" true (Serve.Cache.find c "e" = Some "ve");
  let s = Serve.Cache.stats c in
  check_int "exactly one eviction" 1 s.Serve.Cache.evictions;
  check_int "length stays at capacity" 4 (Serve.Cache.length c)

let test_cache_capacity_bound () =
  let c = Serve.Cache.create ~shards:4 ~capacity:16 () in
  for i = 1 to 200 do
    Serve.Cache.add c (Printf.sprintf "key%d" i) "v"
  done;
  check_bool "length bounded by capacity under churn" true
    (Serve.Cache.length c <= Serve.Cache.capacity c);
  check_bool "eviction counter moved" true
    ((Serve.Cache.stats c).Serve.Cache.evictions > 0);
  (match Serve.Cache.create ~shards:0 () with
  | _ -> Alcotest.fail "shards = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Serve.Cache.create ~shards:8 ~capacity:4 () with
  | _ -> Alcotest.fail "capacity < shards must be rejected"
  | exception Invalid_argument _ -> ()

(* --- engine -------------------------------------------------------------- *)

let test_engine_handle () =
  let e = make_engine ~workers:0 () in
  let ok line frag =
    let resp = Serve.Engine.handle e line in
    check_bool (Printf.sprintf "ok response for %s" frag) true
      (contains resp "\"status\":\"ok\"" && contains resp frag)
  in
  ok "{\"schema\":\"htlc-serve/v1\",\"id\":\"a\",\"req\":\"cutoffs\",\"p_star\":2}"
    "\"p_t3_low\":";
  ok "{\"schema\":\"htlc-serve/v1\",\"req\":\"success_rate\",\"p_star\":2}"
    "\"sr\":";
  ok "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}"
    "\"p_star\":";
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0.5,\"sigma\":0.075,\"spot\":2}"
  in
  check_bool "off-grid quote is a structured error" true
    (contains resp "\"error\":\"outside_grid\"");
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":-1}"
  in
  check_bool "non-positive spot is its own code" true
    (contains resp "\"error\":\"non_positive_spot\"");
  let resp =
    Serve.Engine.handle e
      "{\"schema\":\"htlc-serve/v1\",\"req\":\"sweep\",\"lo\":1.6,\"hi\":2.4,\"n\":100000}"
  in
  check_bool "sweep size is capped" true
    (contains resp "\"error\":\"invalid_params\"");
  let s = Serve.Engine.stats e in
  check_int "requests counted" 6 s.Serve.Engine.requests;
  check_int "ok bodies" 3 s.Serve.Engine.ok;
  check_int "error bodies" 3 s.Serve.Engine.errors;
  Serve.Engine.stop e

let test_engine_cache_identity () =
  let e = make_engine ~workers:0 () in
  let line id =
    Printf.sprintf
      "{\"schema\":\"htlc-serve/v1\",\"id\":%s,\"req\":\"success_rate\",\"p_star\":2}"
      id
  in
  let r1 = Serve.Engine.handle e (line "\"x\"") in
  let r2 = Serve.Engine.handle e (line "\"y\"") in
  let strip_to_req s =
    match String.index_opt s ',' with
    | None -> s
    | Some _ ->
      let marker = "\"req\"" in
      let rec find i =
        if i >= String.length s then s
        else if
          i + String.length marker <= String.length s
          && String.sub s i (String.length marker) = marker
        then String.sub s i (String.length s - i)
        else find (i + 1)
      in
      find 0
  in
  check_str "cached repeat is byte-identical after the id"
    (strip_to_req r1) (strip_to_req r2);
  check_bool "ids differ" true (r1 <> r2);
  let s = Serve.Engine.stats e in
  check_int "second answer came from the cache"
    1 s.Serve.Engine.cache.Serve.Cache.hits;
  Serve.Engine.stop e

let test_engine_route () =
  let e = make_engine ~workers:0 () in
  let line = function
    | Some (from_tok, to_tok, hops) ->
      Printf.sprintf
        "{\"schema\":\"htlc-serve/v1\",\"id\":\"r\",\"req\":\"route\",\"from\":%S,\"to\":%S,\"max_hops\":%d}"
        from_tok to_tok hops
    | None -> assert false
  in
  (* The default universe keeps XMR two hops from the smart-contract
     chains, so a 4-hop budget routes and a 1-hop budget cannot. *)
  let ok = Serve.Engine.handle e (line (Some ("XMR", "USDC", 4))) in
  check_bool "route answers a path" true
    (contains ok "\"status\":\"ok\"" && contains ok "\"path\":[\"XMR\"");
  check_bool "route reports product SR" true (contains ok "\"sr\":");
  let resp = Serve.Engine.handle e (line (Some ("XMR", "USDC", 1))) in
  check_bool "hop-starved pair is no_route" true
    (contains resp "\"error\":\"no_route\"");
  let resp = Serve.Engine.handle e (line (Some ("DOGE", "USDC", 4))) in
  check_bool "unknown token is invalid_params" true
    (contains resp "\"error\":\"invalid_params\"" && contains resp "DOGE");
  (* Byte identity across codecs: the binary decode of the same request
     must produce the same response bytes (spliced id included), served
     from the cache the JSON path populated. *)
  let req =
    {
      Serve.Request.id = Some "r";
      body =
        Serve.Request.Route
          { from_tok = "XMR"; to_tok = "USDC"; max_hops = 4 };
    }
  in
  let hits_before = (Serve.Engine.stats e).cache.Serve.Cache.hits in
  (match Serve.Binary.decode_payload (Serve.Binary.encode_payload req) with
  | Ok decoded ->
    check_str "binary-decoded route is byte-identical" ok
      (Serve.Engine.handle_decoded e decoded)
  | Error err -> Alcotest.failf "route payload must decode: %s" err.message);
  let hits_after = (Serve.Engine.stats e).cache.Serve.Cache.hits in
  check_int "route is cache-keyed across codecs" (hits_before + 1) hits_after;
  Serve.Engine.stop e

let test_engine_shed_and_pump () =
  let e = make_engine ~workers:0 ~queue_capacity:2 () in
  let line id =
    Printf.sprintf
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"%s\",\"req\":\"success_rate\",\"p_star\":2}"
      id
  in
  let t1 =
    match Serve.Engine.submit e (line "a") with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "first submit must queue"
  in
  let t2 =
    match Serve.Engine.submit e (line "b") with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "second submit must queue"
  in
  (match Serve.Engine.submit e (line "c") with
  | `Done resp ->
    check_bool "third submit sheds with overloaded" true
      (contains resp "\"error\":\"overloaded\"")
  | `Ticket _ -> Alcotest.fail "full queue must shed");
  (match Serve.Engine.submit e "not json" with
  | `Done resp ->
    check_bool "parse errors answer immediately even when full" true
      (contains resp "\"error\":\"parse_error\"")
  | `Ticket _ -> Alcotest.fail "parse errors never queue");
  check_bool "pump runs one queued job" true (Serve.Engine.pump e);
  check_bool "pump runs the second" true (Serve.Engine.pump e);
  check_bool "queue now empty" false (Serve.Engine.pump e);
  check_bool "first ticket resolved ok" true
    (contains (Serve.Engine.await t1) "\"status\":\"ok\"");
  check_bool "second ticket resolved ok" true
    (contains (Serve.Engine.await t2) "\"id\":\"b\"");
  let s = Serve.Engine.stats e in
  check_int "one shed" 1 s.Serve.Engine.shed;
  check_int "one parse error" 1 s.Serve.Engine.parse_errors;
  Serve.Engine.stop e;
  match Serve.Engine.submit e (line "d") with
  | `Done resp ->
    check_bool "submit after stop sheds" true
      (contains resp "\"error\":\"overloaded\"")
  | `Ticket _ -> Alcotest.fail "stopped engine must not queue"

let test_engine_deadline () =
  let e = make_engine ~workers:0 ~deadline_s:0.005 () in
  let t =
    match
      Serve.Engine.submit e
        "{\"schema\":\"htlc-serve/v1\",\"id\":\"late\",\"req\":\"success_rate\",\"p_star\":2}"
    with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "submit must queue"
  in
  Unix.sleepf 0.02;
  check_bool "pump processes the stale job" true (Serve.Engine.pump e);
  let resp = Serve.Engine.await t in
  check_bool "stale job answered deadline_exceeded" true
    (contains resp "\"error\":\"deadline_exceeded\"");
  check_bool "id still echoed" true (contains resp "\"id\":\"late\"");
  check_int "counted" 1 (Serve.Engine.stats e).Serve.Engine.deadline_exceeded;
  Serve.Engine.stop e

let test_determinism_guard () =
  (* Two identically configured engines must produce byte-identical
     response arrays at jobs=1 and jobs=4 — the serve layer inherits the
     pool's determinism contract. *)
  let lines =
    Array.init 40 (fun i ->
        match i mod 4 with
        | 0 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"success_rate\",\"p_star\":%g}"
            i (1.8 +. (0.01 *. float_of_int (i / 4)))
        | 1 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"cutoffs\",\"p_star\":2}"
            i
        | 2 ->
          Printf.sprintf
            "{\"schema\":\"htlc-serve/v1\",\"id\":\"i%d\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}"
            i
        | _ -> Printf.sprintf "broken line %d" i)
  in
  let e1 = make_engine ~workers:0 () in
  let e2 = make_engine ~workers:0 () in
  let r1 = Serve.Engine.handle_batch ~jobs:1 e1 lines in
  let r2 = Serve.Engine.handle_batch ~jobs:4 e2 lines in
  check_bool "jobs=1 and jobs=4 responses are byte-identical" true (r1 = r2);
  (* And a warm re-run (every answer cached) is still identical. *)
  let r3 = Serve.Engine.handle_batch ~jobs:4 e1 lines in
  check_bool "cached responses are byte-identical too" true (r1 = r3);
  Serve.Engine.stop e1;
  Serve.Engine.stop e2

(* --- supervision ---------------------------------------------------------- *)

let sr_line id =
  Printf.sprintf
    "{\"schema\":\"htlc-serve/v1\",\"id\":\"%s\",\"req\":\"success_rate\",\"p_star\":2}"
    id

let await_restarts e ~at_least =
  (* The supervisor counts the restart a moment after the crash ticket
     resolves; poll briefly rather than racing it. *)
  let t0 = Obs.Monotonic.now_ns () in
  while
    (Serve.Engine.stats e).Serve.Engine.worker_restarts < at_least
    && Obs.Monotonic.elapsed_s ~since_ns:t0 < 5.
  do
    Unix.sleepf 0.002
  done;
  (Serve.Engine.stats e).Serve.Engine.worker_restarts

let test_supervision_restart () =
  let e = make_engine ~workers:2 () in
  let resp =
    match Serve.Engine.inject_crash ~id:"boom" e with
    | `Ticket t -> Serve.Engine.await t
    | `Done resp -> resp
  in
  check_bool "crash ticket resolves with internal_error" true
    (contains resp "\"error\":\"internal_error\"");
  check_bool "crash response names the injected fault" true
    (contains resp "injected worker crash");
  check_bool "id echoed on the crash response" true
    (contains resp "\"id\":\"boom\"");
  check_bool "supervisor restarted the dead worker" true
    (await_restarts e ~at_least:1 >= 1);
  (* The engine must keep serving after the death/restart cycle. *)
  let after =
    match Serve.Engine.submit e (sr_line "after-crash") with
    | `Ticket t -> Serve.Engine.await t
    | `Done resp -> resp
  in
  check_bool "engine still serves after a restart" true
    (contains after "\"status\":\"ok\"");
  check_int "internal error counted" 1
    (Serve.Engine.stats e).Serve.Engine.internal_errors;
  Serve.Engine.stop e;
  check_int "no workers left after stop" 0 (Serve.Engine.alive_workers e)

let test_pump_absorbs_crash () =
  (* On a worker-less engine the caller's own domain runs the poisoned
     task: the ticket must still resolve, but nothing died, so no
     restart is counted. *)
  let e = make_engine ~workers:0 () in
  let t =
    match Serve.Engine.inject_crash e with
    | `Ticket t -> t
    | `Done _ -> Alcotest.fail "crash task must queue on an idle engine"
  in
  check_bool "pump survives the poisoned task" true (Serve.Engine.pump e);
  check_bool "ticket resolved with internal_error" true
    (contains (Serve.Engine.await t) "\"error\":\"internal_error\"");
  check_int "no restart counted on the pump path" 0
    (Serve.Engine.stats e).Serve.Engine.worker_restarts;
  Serve.Engine.stop e

let test_health_request () =
  let e = make_engine ~workers:0 () in
  let health = "{\"schema\":\"htlc-serve/v1\",\"id\":\"h\",\"req\":\"health\"}" in
  let resp = Serve.Engine.handle e health in
  List.iter
    (fun frag ->
      check_bool (Printf.sprintf "health reports %s" frag) true
        (contains resp frag))
    [
      "\"status\":\"ok\"";
      "\"req\":\"health\"";
      "\"workers\":0";
      "\"queue_depth\":0";
      "\"draining\":false";
      "\"worker_restarts\":0";
      "\"cache\":{";
    ];
  (* Health is live state: it must bypass the cache entirely. *)
  ignore (Serve.Engine.handle e health);
  let s = Serve.Engine.stats e in
  check_int "health is never cached (no hits)" 0
    s.Serve.Engine.cache.Serve.Cache.hits;
  check_int "health is never cached (no misses)" 0
    s.Serve.Engine.cache.Serve.Cache.misses;
  Serve.Engine.stop e;
  check_bool "draining reported after shutdown" true
    (contains (Serve.Engine.handle e health) "\"draining\":true")

(* --- shutdown under load -------------------------------------------------- *)

let test_shutdown_drain_finishes_queue () =
  let e = make_engine ~workers:0 () in
  let tickets =
    List.init 5 (fun i ->
        match Serve.Engine.submit e (sr_line (Printf.sprintf "d%d" i)) with
        | `Ticket t -> t
        | `Done _ -> Alcotest.fail "submit must queue")
  in
  Serve.Engine.shutdown ~drain:true e;
  List.iteri
    (fun i t ->
      check_bool (Printf.sprintf "drained ticket %d resolved ok" i) true
        (contains (Serve.Engine.await t) "\"status\":\"ok\""))
    tickets;
  check_int "queue empty after drain" 0 (Serve.Engine.queue_depth e)

let test_shutdown_nodrain_rejects_queue () =
  let e = make_engine ~workers:0 () in
  let tickets =
    List.init 5 (fun i ->
        match Serve.Engine.submit e (sr_line (Printf.sprintf "n%d" i)) with
        | `Ticket t -> t
        | `Done _ -> Alcotest.fail "submit must queue")
  in
  Serve.Engine.shutdown ~drain:false e;
  List.iteri
    (fun i t ->
      let resp = Serve.Engine.await t in
      check_bool (Printf.sprintf "queued ticket %d rejected" i) true
        (contains resp "\"error\":\"overloaded\"");
      check_bool (Printf.sprintf "rejection %d names shutdown" i) true
        (contains resp "shutting down"))
    tickets;
  check_int "queue empty after fast shutdown" 0 (Serve.Engine.queue_depth e);
  match Serve.Engine.submit e (sr_line "late") with
  | `Done resp ->
    check_bool "new submissions shed while shutting down" true
      (contains resp "\"error\":\"overloaded\"")
  | `Ticket _ -> Alcotest.fail "draining engine must not queue"

let test_shutdown_under_load () =
  (* Submitters race shutdown: every submission must get exactly one
     response — computed, rejected, or shed — and nothing may hang or
     be double-completed. *)
  let e = make_engine ~workers:2 ~queue_capacity:8 () in
  let per_domain = 40 in
  let ok = Atomic.make 0 and rejected = Atomic.make 0 in
  let submitter d =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          let resp =
            match
              Serve.Engine.submit e (sr_line (Printf.sprintf "u%d-%d" d i))
            with
            | `Ticket t -> Serve.Engine.await t
            | `Done resp -> resp
          in
          if contains resp "\"status\":\"ok\"" then Atomic.incr ok
          else if contains resp "\"error\":\"overloaded\"" then
            Atomic.incr rejected
          else Alcotest.failf "unexpected response under shutdown: %s" resp
        done)
  in
  let domains = List.init 3 submitter in
  Unix.sleepf 0.002;
  Serve.Engine.shutdown ~drain:false e;
  List.iter Domain.join domains;
  check_int "every submission got exactly one response"
    (3 * per_domain)
    (Atomic.get ok + Atomic.get rejected);
  check_int "queue empty after racing shutdown" 0
    (Serve.Engine.queue_depth e);
  check_int "idempotent second shutdown is safe" 0
    (Serve.Engine.shutdown ~drain:true e;
     Serve.Engine.queue_depth e)

let test_server_shutdown_with_live_conn () =
  (* A connection mid-request when the server shuts down: shutdown must
     not hang, and the client sees EOF, not a stuck socket. *)
  let e = make_engine ~workers:1 () in
  let path =
    Printf.sprintf "/tmp/htlc-serve-live-%d.sock" (Unix.getpid ())
  in
  let server = Serve.Server.listen e ~path () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  (* Half a request: no newline, so the handler is parked in input_line. *)
  output_string oc "{\"schema\":\"htlc-serve";
  flush oc;
  Serve.Server.shutdown server;
  let ic = Unix.in_channel_of_descr fd in
  (* Depending on timing the forced shutdown surfaces as clean EOF or
     as a reset — either way the connection is over, not stuck. *)
  (match input_line ic with
  | line -> Alcotest.failf "expected EOF after shutdown, got %S" line
  | exception End_of_file -> ()
  | exception Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  check_bool "socket unlinked" false (Sys.file_exists path);
  Serve.Engine.stop e

(* --- stale / live / non-socket paths -------------------------------------- *)

let test_listen_stale_and_live () =
  let e = make_engine ~workers:0 () in
  let path =
    Printf.sprintf "/tmp/htlc-serve-stale-%d.sock" (Unix.getpid ())
  in
  (* A stale socket file: bound and listened once, then abandoned
     without unlink (a crashed server). *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  check_bool "stale socket file exists" true (Sys.file_exists path);
  let server = Serve.Server.listen e ~path () in
  check_bool "stale socket replaced atomically" true (Sys.file_exists path);
  (* A live server at the path: a second listen must refuse loudly. *)
  (match Serve.Server.listen e ~path () with
  | _ -> Alcotest.fail "listen over a live server must raise"
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
  Serve.Server.shutdown server;
  (* A non-socket file: never unlinked, clearly refused. *)
  let regular =
    Printf.sprintf "/tmp/htlc-serve-notsock-%d" (Unix.getpid ())
  in
  Out_channel.with_open_text regular (fun oc ->
      Out_channel.output_string oc "precious data\n");
  (match Serve.Server.listen e ~path:regular () with
  | _ -> Alcotest.fail "listen on a regular file must raise"
  | exception Unix.Unix_error (Unix.ENOTSOCK, _, _) -> ());
  check_bool "regular file untouched" true (Sys.file_exists regular);
  Sys.remove regular;
  Serve.Engine.stop e

(* --- chaos + client ------------------------------------------------------- *)

let test_chaos_determinism () =
  let plan = Serve.Chaos.plan ~seed:11 () in
  let fates n p = List.init n (fun op -> Serve.Chaos.fate p ~op) in
  check_bool "fates are a pure function of (seed, op)" true
    (fates 200 plan = fates 200 (Serve.Chaos.plan ~seed:11 ()));
  check_bool "a different seed draws a different schedule" true
    (fates 200 plan <> fates 200 (Serve.Chaos.plan ~seed:12 ()));
  check_bool "derived streams differ from the base plan" true
    (fates 200 plan <> fates 200 (Serve.Chaos.for_stream plan ~stream:1));
  let faulty =
    List.filter (fun f -> f <> Serve.Chaos.Clean) (fates 200 plan)
  in
  check_bool "a 200-op schedule at full intensity injects faults" true
    (List.length faulty > 0);
  check_bool "zero intensity is a clean transport" true
    (List.for_all
       (fun f -> f = Serve.Chaos.Clean)
       (fates 200 (Serve.Chaos.plan ~seed:11 ~intensity:0. ())))

let test_chaos_pipe_script () =
  let lines = List.init 24 (fun i -> sr_line (Printf.sprintf "p%d" i)) in
  let plan = Serve.Chaos.plan ~seed:5 () in
  let script = Serve.Chaos.corrupt_script plan lines in
  check_str "script corruption is deterministic" script
    (Serve.Chaos.corrupt_script plan lines);
  let expected = Serve.Chaos.expected_pipe_responses plan lines in
  (* Feed the corrupted script through the real pipe transport and
     count answers: every surviving line gets exactly one response. *)
  let tmp = Filename.temp_file "htlc-chaos" ".script" in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc script);
  let out = Filename.temp_file "htlc-chaos" ".out" in
  let e = make_engine ~workers:0 () in
  let served =
    In_channel.with_open_text tmp (fun ic ->
        Out_channel.with_open_text out (fun oc ->
            Serve.Server.serve_pipe e ic oc))
  in
  Serve.Engine.stop e;
  check_int "pipe answers every surviving line" expected served;
  let responses =
    In_channel.with_open_text out In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_int "one response line per served request" expected
    (List.length responses);
  Sys.remove tmp;
  Sys.remove out

let test_client_retries_through_chaos () =
  let e = make_engine ~workers:2 () in
  let path =
    Printf.sprintf "/tmp/htlc-serve-chaos-%d.sock" (Unix.getpid ())
  in
  let server = Serve.Server.listen e ~path () in
  let reference = make_engine ~workers:0 () in
  let plan = Serve.Chaos.plan ~seed:21 () in
  let client =
    Serve.Client.create
      ~dialer:(Serve.Chaos.wrap plan (Serve.Client.socket_dialer ~path))
      ~max_attempts:10 ~base_backoff_s:1e-4 ~max_backoff_s:0.01 ~seed:3 ()
  in
  let lines = List.init 40 (fun i -> sr_line (Printf.sprintf "c%d" i)) in
  List.iteri
    (fun i line ->
      match Serve.Client.call client line with
      | Ok resp ->
        check_str
          (Printf.sprintf "response %d byte-identical through faults" i)
          (Serve.Engine.handle reference line)
          resp
      | Error err ->
        Alcotest.failf "call %d failed: %s (%s after %d attempts)" i
          err.Serve.Client.message err.Serve.Client.code
          err.Serve.Client.attempts)
    lines;
  let s = Serve.Client.stats client in
  check_int "every call counted" 40 s.Serve.Client.calls;
  check_bool "the seeded schedule made the client retry" true
    (s.Serve.Client.retries > 0);
  check_bool "retries re-dialed" true (s.Serve.Client.reconnects > 0);
  check_int "no call ultimately failed" 0 s.Serve.Client.failures;
  Serve.Client.close client;
  Serve.Server.shutdown server;
  Serve.Engine.stop e;
  Serve.Engine.stop reference

let test_client_deadline_and_unavailable () =
  (* No server at all: the client must fail fast and structured, never
     hang. *)
  let path = Printf.sprintf "/tmp/htlc-serve-nope-%d.sock" (Unix.getpid ()) in
  let c =
    Serve.Client.create ~path ~max_attempts:3 ~base_backoff_s:1e-4
      ~max_backoff_s:1e-3 ()
  in
  (match Serve.Client.call c (sr_line "x") with
  | Ok _ -> Alcotest.fail "call without a server must fail"
  | Error err ->
    check_str "attempts exhausted" "unavailable" err.Serve.Client.code;
    check_int "all attempts made" 3 err.Serve.Client.attempts);
  Serve.Client.close c;
  let c =
    Serve.Client.create ~path ~max_attempts:1000 ~base_backoff_s:0.02
      ~max_backoff_s:0.02 ~deadline_s:0.05 ()
  in
  let t0 = Obs.Monotonic.now_ns () in
  (match Serve.Client.call c (sr_line "y") with
  | Ok _ -> Alcotest.fail "call without a server must fail"
  | Error err ->
    check_str "deadline beats the attempt budget" "deadline_exceeded"
      err.Serve.Client.code);
  check_bool "deadline bounded the wall time" true
    (Obs.Monotonic.elapsed_s ~since_ns:t0 < 2.);
  Serve.Client.close c

(* --- socket transport ---------------------------------------------------- *)

let test_socket_roundtrip () =
  let e = make_engine ~workers:2 () in
  let path = Printf.sprintf "/tmp/htlc-serve-test-%d.sock" (Unix.getpid ()) in
  let server = Serve.Server.listen e ~path () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  let lines =
    [
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s2\",\"req\":\"quote\",\"mu\":0,\"sigma\":0.075,\"spot\":2}";
      "definitely not json";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"s1\",\"req\":\"success_rate\",\"p_star\":2}";
    ]
  in
  (* The reference: a worker-less engine with the same configuration,
     answering the same lines directly. *)
  let reference = make_engine ~workers:0 () in
  List.iteri
    (fun i line ->
      check_str
        (Printf.sprintf "socket response #%d is byte-identical to direct" i)
        (Serve.Engine.handle reference line)
        (ask line))
    lines;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Serve.Server.shutdown server;
  Serve.Server.shutdown server;
  (* Idempotent. *)
  check_bool "socket path unlinked on shutdown" false (Sys.file_exists path);
  Serve.Engine.stop e;
  Serve.Engine.stop reference

(* --- quote table reasons -------------------------------------------------- *)

let test_quote_table_reasons () =
  let table = Market.Quote_table.build ~mus ~sigmas Swap.Params.defaults in
  (match Market.Quote_table.lookup table ~mu:0. ~sigma:0.075 ~spot:2. with
  | Ok q -> check_bool "in-grid quote positive" true (q.Market.Quote_table.p_star > 0.)
  | Error _ -> Alcotest.fail "in-grid lookup must quote");
  (match Market.Quote_table.lookup table ~mu:0.5 ~sigma:0.075 ~spot:2. with
  | Error Market.Quote_table.Outside_grid -> ()
  | _ -> Alcotest.fail "off-grid mu must report Outside_grid");
  (match Market.Quote_table.lookup table ~mu:0. ~sigma:0.075 ~spot:0. with
  | Error Market.Quote_table.Non_positive_spot -> ()
  | _ -> Alcotest.fail "zero spot must report Non_positive_spot");
  check_int "no infeasible nodes on this grid" 0
    (Market.Quote_table.gaps table);
  check_bool "grid size" true (Market.Quote_table.nodes table = (2, 2))

(* --- telemetry ------------------------------------------------------------ *)

let with_sampling every f =
  let prev = Serve.Telemetry.sample_every () in
  Serve.Telemetry.set_sample_every every;
  Fun.protect ~finally:(fun () -> Serve.Telemetry.set_sample_every prev) f

let test_sampling_deterministic () =
  let ids = List.init 512 (fun i -> Some (Printf.sprintf "req-%d" i)) in
  with_sampling 4 (fun () ->
      let pick () = List.map Serve.Telemetry.should_sample_id ids in
      let base = pick () in
      check_bool "pure in the id: replay is identical" true (base = pick ());
      (* Shard/worker-count invariance: the decision must not depend on
         the calling domain. *)
      Array.iter
        (fun got -> check_bool "same set from every domain" true (got = base))
        (Array.map Domain.join (Array.init 4 (fun _ -> Domain.spawn pick)));
      let n = List.length (List.filter Fun.id base) in
      check_bool "rate 4 selects some but not all" true (n > 0 && n < 512));
  with_sampling 1 (fun () ->
      check_bool "rate 1 samples everything" true
        (List.for_all Serve.Telemetry.should_sample_id ids
        && Serve.Telemetry.should_sample_id None));
  match Serve.Telemetry.set_sample_every 0 with
  | _ -> Alcotest.fail "rate < 1 must be rejected"
  | exception Invalid_argument _ -> ()

let test_byte_identity_with_telemetry () =
  let lines =
    [
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"t1\",\"req\":\"cutoffs\",\"p_star\":2}";
      sr_line "t2";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"t3\",\"req\":\"quote\",\"mu\":0.01,\"sigma\":0.05,\"spot\":2}";
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"t4\",\"req\":\"sweep\",\"lo\":1.8,\"hi\":2.2,\"n\":3}";
      "not a request at all";
      sr_line "t2";
    ]
  in
  (* A fresh identically configured engine per run: cache state cannot
     leak between the instrumented and the bare pass. *)
  let run () =
    let e = make_engine ~workers:0 () in
    let out =
      List.map
        (fun line ->
          let clock =
            Serve.Telemetry.make ~codec:"pipe"
              ~read_ns:(Serve.Telemetry.now_ns ())
          in
          let resp = Serve.Engine.handle ~clock e line in
          Serve.Telemetry.finish_now clock;
          resp)
        lines
    in
    Serve.Engine.stop e;
    out
  in
  let traced =
    with_sampling 1 (fun () ->
        Serve.Telemetry.set_enabled true;
        Obs.Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Obs.Trace.set_enabled false;
            Obs.Trace.clear ())
          run)
  in
  let bare =
    Serve.Telemetry.set_enabled false;
    Fun.protect ~finally:(fun () -> Serve.Telemetry.set_enabled true) run
  in
  List.iteri
    (fun i (a, b) ->
      check_str
        (Printf.sprintf "response #%d identical with telemetry on/off" i)
        b a)
    (List.combine traced bare)

let test_flight_recorder_dump () =
  Serve.Telemetry.set_recorder_capacity 16;
  Serve.Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Serve.Telemetry.set_recorder_capacity 512;
      Serve.Telemetry.reset ())
  @@ fun () ->
  with_sampling 1 @@ fun () ->
  let e = make_engine ~workers:0 () in
  let input = Filename.temp_file "htlc-recorder" ".in" in
  let output = Filename.temp_file "htlc-recorder" ".out" in
  let dump = Filename.temp_file "htlc-recorder" ".jsonl" in
  Out_channel.with_open_text input (fun oc ->
      for i = 0 to 39 do
        output_string oc (sr_line (Printf.sprintf "fr%d" i));
        output_char oc '\n'
      done);
  let served =
    In_channel.with_open_text input (fun ic ->
        Out_channel.with_open_text output (fun oc ->
            Serve.Server.serve_pipe e ic oc))
  in
  Serve.Engine.stop e;
  check_int "all requests served" 40 served;
  check_int "every request was pushed" 40 (Serve.Telemetry.recorder_pushed ());
  check_int "ring holds its bound" 16 (Serve.Telemetry.recorder_recorded ());
  check_int "overwrites counted" 24 (Serve.Telemetry.recorder_dropped ());
  Out_channel.with_open_text dump
    (Serve.Telemetry.write_recorder ~reason:"unit-test");
  let lines =
    In_channel.with_open_text dump In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_int "header + one line per held record" 17 (List.length lines);
  let module J = Obs.Json_parse in
  let header = J.parse (List.hd lines) in
  let hnum key = J.as_num key (J.member "header" header key) in
  check_str "header schema" "htlc-obs/v1"
    (J.as_str "schema" (J.member "header" header "schema"));
  check_str "header type" "recorder"
    (J.as_str "type" (J.member "header" header "type"));
  check_str "header reason" "unit-test"
    (J.as_str "reason" (J.member "header" header "reason"));
  check_bool "header counts" true
    (hnum "capacity" = 16. && hnum "recorded" = 16. && hnum "pushed" = 40.
   && hnum "dropped" = 24.);
  let last_seq = ref (-1.) in
  List.iteri
    (fun i line ->
      let r = J.parse line in
      let path key = Printf.sprintf "record %d: %s" i key in
      check_str (path "type") "request"
        (J.as_str (path "type") (J.member (path "r") r "type"));
      check_str (path "kind") "success_rate"
        (J.as_str (path "kind") (J.member (path "r") r "kind"));
      check_str (path "codec") "pipe"
        (J.as_str (path "codec") (J.member (path "r") r "codec"));
      check_str (path "status") "ok"
        (J.as_str (path "status") (J.member (path "r") r "status"));
      (match J.member (path "r") r "sampled" with
      | J.Bool true -> ()
      | _ -> Alcotest.failf "record %d: must be sampled at rate 1" i);
      let seq = J.as_num (path "seq") (J.member (path "r") r "seq") in
      check_bool (path "seq ascending") true (seq > !last_seq);
      last_seq := seq;
      let stages =
        J.as_obj (path "stages") (J.member (path "r") r "stages")
      in
      check_bool (path "stages present") true
        (List.mem_assoc "total_ns" stages && List.mem_assoc "decode_ns" stages))
    (List.tl lines);
  check_bool "newest record survived" true (!last_seq = 39.);
  List.iter Sys.remove [ input; output; dump ]

let test_stats_request () =
  let e = make_engine ~workers:0 () in
  let stats_line id =
    Printf.sprintf
      "{\"schema\":\"htlc-serve/v1\",\"id\":\"%s\",\"req\":\"stats\"}" id
  in
  let resp = Serve.Engine.handle e (stats_line "st1") in
  check_bool "stats answers ok with the telemetry sections" true
    (contains resp "\"id\":\"st1\",\"req\":\"stats\",\"status\":\"ok\""
    && contains resp "\"latency\""
    && contains resp "\"stages\""
    && contains resp "\"recorder\""
    && contains resp "\"trace\"");
  (* Live state, never cached: a repeat must not hit the cache. *)
  let misses_before =
    (Serve.Engine.stats e).Serve.Engine.cache.Serve.Cache.misses
  in
  let hits_before =
    (Serve.Engine.stats e).Serve.Engine.cache.Serve.Cache.hits
  in
  ignore (Serve.Engine.handle e (stats_line "st1"));
  let after = (Serve.Engine.stats e).Serve.Engine.cache in
  check_int "no cache miss recorded" misses_before after.Serve.Cache.misses;
  check_int "no cache hit recorded" hits_before after.Serve.Cache.hits;
  Serve.Engine.stop e;
  (* Both codecs carry the kind. *)
  let req = { Serve.Request.id = Some "st2"; body = Serve.Request.Stats } in
  check_str "canonical JSON roundtrip" (Serve.Request.encode req)
    (roundtrip (Serve.Request.encode req));
  match Serve.Binary.decode_payload (Serve.Binary.encode_payload req) with
  | Ok got ->
    check_bool "binary roundtrip preserves stats" true (got = req)
  | Error err -> Alcotest.failf "binary stats decode failed: %s" err.message

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "golden encodings" `Quick test_codec_golden;
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "error taxonomy" `Quick test_codec_errors;
          Alcotest.test_case "fast/slow path agreement" `Quick
            test_decode_fastpath_agreement;
        ] );
      ( "binary",
        [
          Alcotest.test_case "golden vectors" `Quick test_binary_golden;
          Alcotest.test_case "roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "error taxonomy" `Quick test_binary_errors;
          Alcotest.test_case "incremental framing" `Quick
            test_binary_incremental;
          Alcotest.test_case "socket + torn frames" `Quick
            test_binary_socket_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss/incumbent" `Quick test_cache_hit_miss;
          Alcotest.test_case "second chance" `Quick test_cache_second_chance;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity_bound;
        ] );
      ( "engine",
        [
          Alcotest.test_case "handle + dispatch" `Quick test_engine_handle;
          Alcotest.test_case "cache identity" `Quick test_engine_cache_identity;
          Alcotest.test_case "route kind" `Quick test_engine_route;
          Alcotest.test_case "shed + pump" `Quick test_engine_shed_and_pump;
          Alcotest.test_case "deadline" `Quick test_engine_deadline;
          Alcotest.test_case "jobs invariance" `Quick test_determinism_guard;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash + restart" `Quick test_supervision_restart;
          Alcotest.test_case "pump absorbs crash" `Quick
            test_pump_absorbs_crash;
          Alcotest.test_case "health request" `Quick test_health_request;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "drain finishes queue" `Quick
            test_shutdown_drain_finishes_queue;
          Alcotest.test_case "no-drain rejects queue" `Quick
            test_shutdown_nodrain_rejects_queue;
          Alcotest.test_case "racing submitters" `Quick
            test_shutdown_under_load;
          Alcotest.test_case "live connection" `Quick
            test_server_shutdown_with_live_conn;
        ] );
      ( "listen",
        [
          Alcotest.test_case "stale/live/non-socket" `Quick
            test_listen_stale_and_live;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "fate determinism" `Quick test_chaos_determinism;
          Alcotest.test_case "pipe script" `Quick test_chaos_pipe_script;
          Alcotest.test_case "client retries" `Quick
            test_client_retries_through_chaos;
          Alcotest.test_case "client failure modes" `Quick
            test_client_deadline_and_unavailable;
        ] );
      ( "transport",
        [ Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip ] );
      ( "quote-table",
        [ Alcotest.test_case "reasons + gaps" `Quick test_quote_table_reasons ] );
      ( "telemetry",
        [
          Alcotest.test_case "deterministic sampling" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "byte identity on/off" `Quick
            test_byte_identity_with_telemetry;
          Alcotest.test_case "flight-recorder dump" `Quick
            test_flight_recorder_dump;
          Alcotest.test_case "stats request kind" `Quick test_stats_request;
        ] );
    ]
