(* Tests for the stochastic-process substrate: GBM transition law,
   Wiener sampling, SDE schemes, lattices, jump diffusion, paths. *)

open Numerics
open Stochastic

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let gbm = Gbm.create ~mu:0.002 ~sigma:0.1

(* --- GBM ----------------------------------------------------------------- *)

let test_gbm_expectation () =
  (* Paper: E(P_t, tau) = P_t e^{mu tau}. *)
  check_float ~tol:1e-12 "expectation" (2. *. exp (0.002 *. 4.))
    (Gbm.expectation gbm ~p0:2. ~tau:4.);
  (* And by quadrature over the transition pdf. *)
  let by_quadrature =
    Integrate.semi_infinite ~n:600
      (fun x -> x *. Gbm.pdf gbm ~x ~p0:2. ~tau:4.)
      ~a:0.
  in
  check_float ~tol:1e-6 "expectation by quadrature"
    (Gbm.expectation gbm ~p0:2. ~tau:4.)
    by_quadrature

let test_gbm_cdf_limits () =
  check_float ~tol:1e-12 "cdf at 0" 0. (Gbm.cdf gbm ~x:1e-15 ~p0:2. ~tau:4.);
  check_float ~tol:1e-9 "cdf at huge" 1. (Gbm.cdf gbm ~x:1e6 ~p0:2. ~tau:4.);
  check_float ~tol:1e-12 "cdf+sf=1" 1.
    (Gbm.cdf gbm ~x:2.3 ~p0:2. ~tau:4. +. Gbm.sf gbm ~x:2.3 ~p0:2. ~tau:4.)

let test_gbm_cdf_median () =
  (* The median of the transition is p0 e^{(mu - sigma^2/2) tau}. *)
  let median = 2. *. exp ((0.002 -. 0.005) *. 4.) in
  check_float ~tol:1e-12 "cdf at median" 0.5
    (Gbm.cdf gbm ~x:median ~p0:2. ~tau:4.)

let test_gbm_cdf_pdf_consistency () =
  (* d/dx CDF = pdf, checked by a central difference. *)
  let x = 2.2 and h = 1e-5 in
  let deriv =
    (Gbm.cdf gbm ~x:(x +. h) ~p0:2. ~tau:4.
    -. Gbm.cdf gbm ~x:(x -. h) ~p0:2. ~tau:4.)
    /. (2. *. h)
  in
  check_float ~tol:1e-6 "cdf' = pdf" (Gbm.pdf gbm ~x ~p0:2. ~tau:4.) deriv

let test_gbm_quantile () =
  List.iter
    (fun p ->
      let x = Gbm.quantile gbm ~p ~p0:2. ~tau:4. in
      check_float ~tol:1e-9 (Printf.sprintf "cdf(quantile %g)" p) p
        (Gbm.cdf gbm ~x ~p0:2. ~tau:4.))
    [ 0.01; 0.3; 0.5; 0.9; 0.999 ]

let test_gbm_sample_moments () =
  let rng = Rng.create ~seed:101 () in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Gbm.sample rng gbm ~p0:2. ~tau:4.) in
  let s = Stats.summarize xs in
  check_float ~tol:5e-3 "sample mean" (Gbm.expectation gbm ~p0:2. ~tau:4.)
    s.Stats.mean;
  (* Log returns should have mean (mu - sigma^2/2) tau and sd sigma sqrt tau. *)
  let logs = Array.map (fun x -> log (x /. 2.)) xs in
  let ls = Stats.summarize logs in
  check_float ~tol:2e-3 "log mean" (Gbm.log_return_mean gbm ~tau:4.) ls.Stats.mean;
  check_float ~tol:2e-3 "log sd" (Gbm.log_return_stddev gbm ~tau:4.)
    ls.Stats.stddev

let test_gbm_partial_expectations () =
  let k = 2.1 in
  let above = Gbm.partial_expectation_above gbm ~k ~p0:2. ~tau:4. in
  let below = Gbm.partial_expectation_below gbm ~k ~p0:2. ~tau:4. in
  check_float ~tol:1e-10 "above+below=mean"
    (Gbm.expectation gbm ~p0:2. ~tau:4.)
    (above +. below);
  let above_quad =
    Integrate.semi_infinite ~n:600
      (fun x -> x *. Gbm.pdf gbm ~x ~p0:2. ~tau:4.)
      ~a:k
  in
  check_float ~tol:1e-6 "above by quadrature" above_quad above

let test_gbm_path () =
  let rng = Rng.create ~seed:55 () in
  let times = [| 1.; 2.; 5.; 8. |] in
  let path = Gbm.sample_path rng gbm ~p0:2. ~times in
  Alcotest.(check int) "length" 4 (Array.length path);
  Array.iter (fun v -> if v <= 0. then Alcotest.fail "nonpositive price") path

let test_gbm_invalid () =
  Alcotest.check_raises "sigma <= 0"
    (Invalid_argument "Gbm.create: requires sigma > 0") (fun () ->
      ignore (Gbm.create ~mu:0. ~sigma:0.));
  Alcotest.check_raises "p0 <= 0" (Invalid_argument "Gbm: requires p0 > 0")
    (fun () -> ignore (Gbm.expectation gbm ~p0:0. ~tau:1.))

(* --- Wiener -------------------------------------------------------------- *)

let test_wiener_increment_stats () =
  let rng = Rng.create ~seed:77 () in
  let xs = Array.init 100_000 (fun _ -> Wiener.increment rng ~dt:0.25) in
  let s = Stats.summarize xs in
  check_float ~tol:5e-3 "mean 0" 0. s.Stats.mean;
  check_float ~tol:5e-3 "sd sqrt dt" 0.5 s.Stats.stddev

let test_wiener_path_monotone_check () =
  let rng = Rng.create ~seed:78 () in
  Alcotest.check_raises "non-increasing times"
    (Invalid_argument "Wiener.sample_path: times must be strictly increasing")
    (fun () -> ignore (Wiener.sample_path rng ~times:[| 1.; 1. |]))

let test_wiener_bridge () =
  let rng = Rng.create ~seed:79 () in
  let n = 50_000 in
  let xs =
    Array.init n (fun _ ->
        Wiener.bridge rng ~t0:0. ~w0:0. ~t1:4. ~w1:2. ~t:1.)
  in
  let s = Stats.summarize xs in
  (* mean = w0 + (t-t0)/(t1-t0) (w1-w0) = 0.5; var = 1*3/4 = 0.75 *)
  check_float ~tol:2e-2 "bridge mean" 0.5 s.Stats.mean;
  check_float ~tol:2e-2 "bridge var" 0.75 s.Stats.variance

(* --- SDE schemes ---------------------------------------------------------- *)

let test_euler_matches_gbm_weakly () =
  let rng = Rng.create ~seed:91 () in
  let coeffs = Sde.gbm_coeffs ~mu:0.002 ~sigma:0.1 in
  let n = 40_000 in
  let xs =
    Array.init n (fun _ ->
        Sde.terminal rng coeffs ~x0:2. ~t0:0. ~t1:4. ~steps:64)
  in
  let s = Stats.summarize xs in
  check_float ~tol:8e-3 "euler mean" (2. *. exp (0.002 *. 4.)) s.Stats.mean

let test_milstein_positive_paths () =
  let rng = Rng.create ~seed:92 () in
  let coeffs = Sde.gbm_coeffs ~mu:0.002 ~sigma:0.1 in
  let path =
    Sde.milstein rng coeffs
      ~diffusion_dx:(fun _t _x -> 0.1)
      ~x0:2. ~t0:0. ~t1:4. ~steps:256
  in
  Alcotest.(check int) "length" 257 (Array.length path);
  check_float ~tol:1e-12 "starts at x0" 2. path.(0)

let test_sde_invalid () =
  let rng = Rng.create ~seed:93 () in
  let coeffs = Sde.gbm_coeffs ~mu:0. ~sigma:1. in
  Alcotest.check_raises "steps <= 0"
    (Invalid_argument "Sde: requires steps > 0") (fun () ->
      ignore (Sde.euler_maruyama rng coeffs ~x0:1. ~t0:0. ~t1:1. ~steps:0))

(* --- Lattice --------------------------------------------------------------- *)

let test_lattice_probabilities () =
  let lat = Lattice.create gbm ~p0:2. ~horizon:4. ~steps:40 in
  let total = ref 0. in
  for index = 0 to 40 do
    total := !total +. Lattice.node_probability lat ~level:40 ~index
  done;
  check_float ~tol:1e-9 "node probabilities sum to 1" 1. !total

let test_lattice_expectation_converges () =
  let exact = Gbm.expectation gbm ~p0:2. ~tau:4. in
  List.iter
    (fun steps ->
      let lat = Lattice.create gbm ~p0:2. ~horizon:4. ~steps in
      let approx = Lattice.expectation_at lat ~level:steps in
      if abs_float (approx -. exact) > 0.005 then
        Alcotest.failf "lattice(%d) expectation %g vs %g" steps approx exact)
    [ 20; 80 ]

let test_lattice_prices_monotone () =
  let lat = Lattice.create gbm ~p0:2. ~horizon:4. ~steps:10 in
  let prices = Lattice.level_prices lat ~level:10 in
  for i = 1 to 10 do
    if prices.(i) <= prices.(i - 1) then
      Alcotest.fail "prices not increasing in index"
  done

let test_lattice_expected_value () =
  let lat = Lattice.create gbm ~p0:2. ~horizon:1. ~steps:1 in
  let next = Lattice.level_prices lat ~level:1 in
  let ev = Lattice.expected_value lat ~level:0 ~index:0 ~values:next in
  check_float ~tol:1e-9 "one-step expectation" (2. *. exp (0.002 *. 1.)) ev

let test_lattice_distribution_cdf () =
  (* The lattice CDF at the GBM median should approach 1/2. *)
  let steps = 200 in
  let lat = Lattice.create gbm ~p0:2. ~horizon:4. ~steps in
  let median = 2. *. exp ((0.002 -. 0.005) *. 4.) in
  let below = ref 0. in
  for index = 0 to steps do
    if Lattice.price lat ~level:steps ~index <= median then
      below := !below +. Lattice.node_probability lat ~level:steps ~index
  done;
  check_float ~tol:0.04 "lattice cdf at median" 0.5 !below

(* --- Jump diffusion --------------------------------------------------------- *)

let test_jump_reduces_to_gbm () =
  let jd =
    Jump_diffusion.create ~mu:0.002 ~sigma:0.1 ~lambda:0. ~jump_mean:0.
      ~jump_stddev:0.1
  in
  let rng1 = Rng.create ~seed:5 () and rng2 = Rng.create ~seed:5 () in
  let a = Jump_diffusion.sample rng1 jd ~p0:2. ~tau:4. in
  let b = Gbm.sample rng2 gbm ~p0:2. ~tau:4. in
  check_float ~tol:1e-12 "lambda=0 equals GBM draw" b a

let test_jump_expectation () =
  let jd =
    Jump_diffusion.create ~mu:0.002 ~sigma:0.1 ~lambda:0.05 ~jump_mean:(-0.02)
      ~jump_stddev:0.3
  in
  let rng = Rng.create ~seed:6 () in
  let n = 300_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Jump_diffusion.sample rng jd ~p0:2. ~tau:4.
  done;
  let mc = !sum /. float_of_int n in
  check_float ~tol:0.02 "jump expectation"
    (Jump_diffusion.expectation jd ~p0:2. ~tau:4.)
    mc

(* --- Exponential OU (Schwartz) ---------------------------------------------- *)

let ou = Exp_ou.create ~kappa:0.1 ~theta_price:2. ~sigma:0.1

let test_exp_ou_transition_moments () =
  let rng = Rng.create ~seed:303 () in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Exp_ou.sample rng ou ~p0:3. ~tau:5.) in
  let s = Stats.summarize xs in
  check_float ~tol:0.01 "MC mean matches analytic"
    (Exp_ou.expectation ou ~p0:3. ~tau:5.)
    s.Stats.mean;
  (* Log mean reverts toward the peg. *)
  let log_mean = Stats.mean (Array.map log xs) in
  let expected_log = log 2. +. ((log 3. -. log 2.) *. exp (-0.1 *. 5.)) in
  check_float ~tol:5e-3 "log mean reverts" expected_log log_mean

let test_exp_ou_pulls_toward_peg () =
  (* From above the peg the expectation falls; from below it rises. *)
  if Exp_ou.expectation ou ~p0:3. ~tau:10. >= 3. then
    Alcotest.fail "must revert downward from above";
  if Exp_ou.expectation ou ~p0:1. ~tau:10. <= 1. then
    Alcotest.fail "must revert upward from below"

let test_exp_ou_stationary_limit () =
  let stat = Exp_ou.stationary ou in
  let far = Exp_ou.transition ou ~p0:17. ~tau:500. in
  check_float ~tol:1e-6 "mu converges" stat.Numerics.Lognormal.mu
    far.Numerics.Lognormal.mu;
  check_float ~tol:1e-6 "sigma converges" stat.Numerics.Lognormal.sigma
    far.Numerics.Lognormal.sigma

let test_exp_ou_short_horizon_is_gbm_like () =
  (* Over horizons far below the half life the transition sd matches a
     GBM's sigma sqrt(tau). *)
  let law = Exp_ou.transition ou ~p0:2. ~tau:0.01 in
  check_float ~tol:1e-4 "short-run diffusion" (0.1 *. sqrt 0.01)
    law.Numerics.Lognormal.sigma

let test_exp_ou_half_life () =
  check_float ~tol:1e-12 "half life" (log 2. /. 0.1) (Exp_ou.half_life ou);
  (* After one half life the log deviation halves. *)
  let tau = Exp_ou.half_life ou in
  let law = Exp_ou.transition ou ~p0:4. ~tau in
  check_float ~tol:1e-9 "deviation halves"
    (log 2. +. (0.5 *. (log 4. -. log 2.)))
    law.Numerics.Lognormal.mu

let test_exp_ou_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection")
    [
      (fun () -> Exp_ou.create ~kappa:0. ~theta_price:2. ~sigma:0.1);
      (fun () -> Exp_ou.create ~kappa:1. ~theta_price:0. ~sigma:0.1);
      (fun () -> Exp_ou.create ~kappa:1. ~theta_price:2. ~sigma:0.);
    ]

(* --- Path ---------------------------------------------------------------------- *)

let demo_path () =
  Path.create ~times:[| 1.; 2.; 4. |] ~values:[| 10.; 12.; 9. |]

let test_path_at () =
  let p = demo_path () in
  check_float ~tol:0. "at exact" 12. (Path.at p 2.);
  check_float ~tol:0. "previous tick" 12. (Path.at p 3.9);
  check_float ~tol:0. "beyond end" 9. (Path.at p 100.);
  Alcotest.check_raises "before start"
    (Invalid_argument "Path.at: time precedes first sample") (fun () ->
      ignore (Path.at p 0.5))

let test_path_linear () =
  let p = demo_path () in
  check_float ~tol:1e-12 "interpolated" 11. (Path.at_linear p 1.5);
  check_float ~tol:1e-12 "clamped" 10. (Path.at_linear p 0.)

let test_path_log_returns () =
  let p = demo_path () in
  let rets = Path.log_returns p in
  Alcotest.(check int) "n-1 returns" 2 (Array.length rets);
  check_float ~tol:1e-12 "first" (log (12. /. 10.)) rets.(0)

let test_path_invalid () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Path.create: times must be strictly increasing")
    (fun () -> ignore (Path.create ~times:[| 2.; 1. |] ~values:[| 1.; 2. |]))

let test_realized_volatility_recovers_sigma () =
  let rng = Rng.create ~seed:21 () in
  let times = Array.init 2000 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let values = Gbm.sample_path rng gbm ~p0:2. ~times in
  let p = Path.create ~times ~values in
  check_float ~tol:0.01 "realized vol ~ sigma" 0.1 (Path.realized_volatility p)

(* --- properties ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"gbm cdf monotone in x" ~count:200
      (pair (float_range 0.1 10.) (float_range 0.1 10.))
      (fun (a, b) ->
        let a, b = if a <= b then (a, b) else (b, a) in
        Gbm.cdf gbm ~x:a ~p0:2. ~tau:4. <= Gbm.cdf gbm ~x:b ~p0:2. ~tau:4. +. 1e-12);
    Test.make ~name:"gbm partial expectations consistent" ~count:200
      (float_range 0.05 20.)
      (fun k ->
        let above = Gbm.partial_expectation_above gbm ~k ~p0:2. ~tau:4. in
        let below = Gbm.partial_expectation_below gbm ~k ~p0:2. ~tau:4. in
        abs_float (above +. below -. Gbm.expectation gbm ~p0:2. ~tau:4.) < 1e-9);
    Test.make ~name:"lattice up-prob in (0,1) across sigmas" ~count:100
      (pair (float_range 0.02 0.5) (int_range 30 200))
      (fun (sigma, steps) ->
        let g = Gbm.create ~mu:0.002 ~sigma in
        let lat = Lattice.create g ~p0:2. ~horizon:4. ~steps in
        Lattice.prob_up lat > 0. && Lattice.prob_up lat < 1.);
    Test.make ~name:"gbm samples positive" ~count:300
      (int_range 0 10_000)
      (fun seed ->
        let rng = Rng.create ~seed () in
        Gbm.sample rng gbm ~p0:2. ~tau:4. > 0.);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "stochastic"
    [
      ( "gbm",
        [
          Alcotest.test_case "expectation (paper E)" `Quick test_gbm_expectation;
          Alcotest.test_case "cdf limits" `Quick test_gbm_cdf_limits;
          Alcotest.test_case "cdf at median" `Quick test_gbm_cdf_median;
          Alcotest.test_case "cdf/pdf consistency" `Quick
            test_gbm_cdf_pdf_consistency;
          Alcotest.test_case "quantile" `Quick test_gbm_quantile;
          Alcotest.test_case "sample moments" `Slow test_gbm_sample_moments;
          Alcotest.test_case "partial expectations" `Quick
            test_gbm_partial_expectations;
          Alcotest.test_case "sample path" `Quick test_gbm_path;
          Alcotest.test_case "invalid arguments" `Quick test_gbm_invalid;
        ] );
      ( "wiener",
        [
          Alcotest.test_case "increment stats" `Slow test_wiener_increment_stats;
          Alcotest.test_case "path validation" `Quick
            test_wiener_path_monotone_check;
          Alcotest.test_case "brownian bridge" `Slow test_wiener_bridge;
        ] );
      ( "sde",
        [
          Alcotest.test_case "euler weak convergence" `Slow
            test_euler_matches_gbm_weakly;
          Alcotest.test_case "milstein basics" `Quick
            test_milstein_positive_paths;
          Alcotest.test_case "invalid arguments" `Quick test_sde_invalid;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "probabilities sum to 1" `Quick
            test_lattice_probabilities;
          Alcotest.test_case "expectation converges" `Quick
            test_lattice_expectation_converges;
          Alcotest.test_case "prices monotone" `Quick
            test_lattice_prices_monotone;
          Alcotest.test_case "one-step expected value" `Quick
            test_lattice_expected_value;
          Alcotest.test_case "cdf at median" `Quick
            test_lattice_distribution_cdf;
        ] );
      ( "jump_diffusion",
        [
          Alcotest.test_case "lambda=0 reduces to GBM" `Quick
            test_jump_reduces_to_gbm;
          Alcotest.test_case "expectation formula" `Slow test_jump_expectation;
        ] );
      ( "exp_ou",
        [
          Alcotest.test_case "transition moments" `Slow
            test_exp_ou_transition_moments;
          Alcotest.test_case "pulls toward the peg" `Quick
            test_exp_ou_pulls_toward_peg;
          Alcotest.test_case "stationary limit" `Quick
            test_exp_ou_stationary_limit;
          Alcotest.test_case "short horizon is GBM-like" `Quick
            test_exp_ou_short_horizon_is_gbm_like;
          Alcotest.test_case "half life" `Quick test_exp_ou_half_life;
          Alcotest.test_case "validation" `Quick test_exp_ou_validation;
        ] );
      ( "path",
        [
          Alcotest.test_case "previous-tick lookup" `Quick test_path_at;
          Alcotest.test_case "linear interpolation" `Quick test_path_linear;
          Alcotest.test_case "log returns" `Quick test_path_log_returns;
          Alcotest.test_case "validation" `Quick test_path_invalid;
          Alcotest.test_case "realized volatility" `Slow
            test_realized_volatility_recovers_sigma;
        ] );
      ("properties", props);
    ]
