(* Tests for the core swap model: parameters, timeline, interval sets,
   utilities (vs direct quadrature of the paper's integrals), cutoffs,
   success rates, the collateral extension and mechanism tuning. *)

open Numerics
open Stochastic

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let p = Swap.Params.defaults

(* --- Params --------------------------------------------------------------- *)

let test_params_defaults_valid () =
  match Swap.Params.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "defaults invalid: %s" e

let test_params_validation () =
  let cases =
    [
      ("eps_b >= tau_b", { p with Swap.Params.eps_b = 4. });
      ("negative sigma", { p with Swap.Params.sigma = -0.1 });
      ("zero r", Swap.Params.with_r_alice p 0.);
      ("alpha <= -1", Swap.Params.with_alpha_bob p (-1.));
      ("nonpositive p0", Swap.Params.with_p0 p 0.);
    ]
  in
  List.iter
    (fun (label, bad) ->
      match Swap.Params.validate bad with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "expected %s to be invalid" label)
    cases

let test_params_create_rejects () =
  match Swap.Params.create ~eps_b:5. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create must validate"

(* --- Timeline -------------------------------------------------------------- *)

let test_timeline_eq13 () =
  let tl = Swap.Timeline.ideal p in
  let open Swap.Timeline in
  check_float "t1 = t0" tl.t0 tl.t1;
  check_float "t2" 3. tl.t2;
  check_float "t3" 7. tl.t3;
  check_float "t4" 8. tl.t4;
  check_float "t5 = t_b" 11. tl.t5;
  check_float "t6 = t_a" 11. tl.t6;
  check_float "t7" 15. tl.t7;
  check_float "t8" 14. tl.t8

let test_timeline_satisfies_eq12 () =
  match Swap.Timeline.check p (Swap.Timeline.ideal p) with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)

let test_timeline_check_catches_violation () =
  let tl = Swap.Timeline.ideal p in
  let broken = { tl with Swap.Timeline.t3 = tl.Swap.Timeline.t2 } in
  match Swap.Timeline.check p broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected Eq. 6 violation"

let test_timeline_offset () =
  let tl = Swap.Timeline.ideal ~start:100. p in
  check_float "start offset" 103. tl.Swap.Timeline.t2

(* --- Intervals -------------------------------------------------------------- *)

let test_intervals_basic () =
  let s =
    Swap.Intervals.of_list
      [ { Swap.Intervals.lo = 1.; hi = 2. }; { Swap.Intervals.lo = 3.; hi = infinity } ]
  in
  Alcotest.(check bool) "contains 1.5" true (Swap.Intervals.contains s 1.5);
  Alcotest.(check bool) "not 2.5" false (Swap.Intervals.contains s 2.5);
  Alcotest.(check bool) "contains 1e9" true (Swap.Intervals.contains s 1e9);
  Alcotest.(check bool) "open at endpoint" false (Swap.Intervals.contains s 2.)

let test_intervals_validation () =
  (match
     Swap.Intervals.of_list
       [ { Swap.Intervals.lo = 1.; hi = 3. }; { Swap.Intervals.lo = 2.; hi = 4. } ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlap must be rejected");
  match Swap.Intervals.of_list [ { Swap.Intervals.lo = 2.; hi = 2. } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "degenerate must be rejected"

let test_intervals_set_ops () =
  let a = Swap.Intervals.of_list [ { Swap.Intervals.lo = 0.; hi = 2. } ] in
  let b = Swap.Intervals.of_list [ { Swap.Intervals.lo = 1.; hi = 3. } ] in
  let i = Swap.Intervals.intersect a b in
  let u = Swap.Intervals.union a b in
  Alcotest.(check string) "intersection" "(1, 2)" (Swap.Intervals.to_string i);
  Alcotest.(check string) "union" "(0, 3)" (Swap.Intervals.to_string u)

let test_intervals_from_signs () =
  (* f > 0 on (1, 2) and (3, inf). *)
  let f x = (x -. 1.) *. (x -. 2.) *. (x -. 3.) in
  let s =
    Swap.Intervals.of_sign_changes ~f ~roots:[ 1.; 2.; 3. ] ~domain_lo:0.
      ~domain_hi:infinity
  in
  Alcotest.(check bool) "1.5 in" true (Swap.Intervals.contains s 1.5);
  Alcotest.(check bool) "2.5 out" false (Swap.Intervals.contains s 2.5);
  Alcotest.(check bool) "10 in" true (Swap.Intervals.contains s 10.);
  Alcotest.(check bool) "0.5 out" false (Swap.Intervals.contains s 0.5)

(* --- Utilities: formulas vs the paper's expressions -------------------------- *)

let test_a_t3_utilities () =
  (* Eq. 14: (1 + alpha) P e^{mu tau_b} e^{-r tau_b}. *)
  check_float ~tol:1e-12 "Eq. 14"
    (1.3 *. 1.7 *. exp (0.002 *. 4.) *. exp (-0.01 *. 4.))
    (Swap.Utility.a_t3_cont p ~p_t3:1.7);
  (* Eq. 16: P* e^{-r (eps_b + 2 tau_a)}. *)
  check_float ~tol:1e-12 "Eq. 16"
    (2. *. exp (-0.01 *. 7.))
    (Swap.Utility.a_t3_stop p ~p_star:2.)

let test_b_t3_utilities () =
  (* Eq. 15: (1 + alpha) P* e^{-r (eps_b + tau_a)}. *)
  check_float ~tol:1e-12 "Eq. 15"
    (1.3 *. 2. *. exp (-0.01 *. 4.))
    (Swap.Utility.b_t3_cont p ~p_star:2.);
  (* Eq. 17: P e^{2 mu tau_b} e^{-2 r tau_b}. *)
  check_float ~tol:1e-12 "Eq. 17"
    (1.7 *. exp (2. *. 0.002 *. 4.) *. exp (-2. *. 0.01 *. 4.))
    (Swap.Utility.b_t3_stop p ~p_t3:1.7)

(* The t2 utilities use closed-form partial expectations; integrate the
   paper's Eq. 20/21 integrands numerically and compare. *)
let test_a_t2_cont_vs_quadrature () =
  let gbm = Swap.Params.gbm p in
  let p_star = 2. in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  List.iter
    (fun p_t2 ->
      let integral =
        Integrate.semi_infinite ~n:800
          (fun x ->
            Gbm.pdf gbm ~x ~p0:p_t2 ~tau:p.Swap.Params.tau_b
            *. Swap.Utility.a_t3_cont p ~p_t3:x)
          ~a:k3
      in
      let expected =
        (integral
        +. Gbm.cdf gbm ~x:k3 ~p0:p_t2 ~tau:p.Swap.Params.tau_b
           *. Swap.Utility.a_t3_stop p ~p_star)
        *. exp (-.p.Swap.Params.alice.r *. p.Swap.Params.tau_b)
      in
      check_float ~tol:1e-5
        (Printf.sprintf "Eq. 20 at P_t2=%g" p_t2)
        expected
        (Swap.Utility.a_t2_cont p ~p_star ~k3 ~p_t2))
    [ 1.2; 1.8; 2.4 ]

let test_b_t2_cont_vs_quadrature () =
  let gbm = Swap.Params.gbm p in
  let p_star = 2. in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  List.iter
    (fun p_t2 ->
      let stop_integral =
        Integrate.gauss_legendre ~n:400
          (fun x ->
            Gbm.pdf gbm ~x ~p0:p_t2 ~tau:p.Swap.Params.tau_b
            *. Swap.Utility.b_t3_stop p ~p_t3:x)
          ~a:1e-9 ~b:k3
      in
      let expected =
        (Gbm.sf gbm ~x:k3 ~p0:p_t2 ~tau:p.Swap.Params.tau_b
         *. Swap.Utility.b_t3_cont p ~p_star
        +. stop_integral)
        *. exp (-.p.Swap.Params.bob.r *. p.Swap.Params.tau_b)
      in
      check_float ~tol:1e-5
        (Printf.sprintf "Eq. 21 at P_t2=%g" p_t2)
        expected
        (Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2))
    [ 1.2; 1.8; 2.4 ]

(* --- Cutoffs ------------------------------------------------------------------ *)

let test_p_t3_low_closed_form () =
  (* Eq. 18 with defaults at P* = 2. *)
  let expected =
    exp (((0.01 -. 0.002) *. 4.) -. (0.01 *. 7.)) *. 2. /. 1.3
  in
  check_float ~tol:1e-12 "Eq. 18" expected (Swap.Cutoff.p_t3_low p ~p_star:2.);
  (* Increasing in P*. *)
  if Swap.Cutoff.p_t3_low p ~p_star:3. <= Swap.Cutoff.p_t3_low p ~p_star:2. then
    Alcotest.fail "cutoff must increase with P*"

let test_p_t2_band_roots () =
  let p_star = 2. in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  match Swap.Cutoff.p_t2_band_endpoints p ~p_star with
  | None -> Alcotest.fail "expected a nonempty band"
  | Some (lo, hi) ->
    (* The endpoints are exactly Bob's indifference points. *)
    let g x =
      Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2:x -. Swap.Utility.b_t2_stop ~p_t2:x
    in
    check_float ~tol:1e-6 "g(lo) = 0" 0. (g lo);
    check_float ~tol:1e-6 "g(hi) = 0" 0. (g hi);
    if g (0.5 *. (lo +. hi)) <= 0. then
      Alcotest.fail "g must be positive inside the band";
    if not (lo < 2. && 2. < hi) then
      Alcotest.fail "spot price should be inside the band at P* = 2"

let test_p_t2_band_empty_for_tiny_alpha () =
  (* Section III-E3: when alpha_B is small enough Bob never continues. *)
  let p' = Swap.Params.with_alpha_bob p 0.001 in
  match Swap.Cutoff.p_t2_band_endpoints p' ~p_star:2. with
  | None -> ()
  | Some (lo, hi) ->
    (* A nonempty band can survive at small alpha if drift compensates;
       with default mu it should be very narrow or absent. *)
    if hi -. lo > 0.5 then
      Alcotest.failf "band unexpectedly wide: (%g, %g)" lo hi

let test_eq29_feasible_band () =
  match Swap.Cutoff.p_star_band_endpoints p with
  | None -> Alcotest.fail "feasible band must exist under defaults"
  | Some (lo, hi) ->
    (* Paper reports (1.5, 2.5) at two significant digits. *)
    check_float ~tol:0.1 "P*_low ~ 1.5" 1.5 lo;
    check_float ~tol:0.1 "P*_high ~ 2.5" 2.5 hi

let test_feasible_band_widens_with_alpha () =
  let band alpha =
    let p' =
      Swap.Params.with_alpha_alice (Swap.Params.with_alpha_bob p alpha) alpha
    in
    Swap.Cutoff.p_star_band_endpoints p'
  in
  match (band 0.15, band 0.45) with
  | Some (lo1, hi1), Some (lo2, hi2) ->
    if hi2 -. lo2 <= hi1 -. lo1 then
      Alcotest.fail "higher alpha must widen the feasible band"
  | None, Some _ -> () (* low alpha infeasible is also consistent *)
  | _, None -> Alcotest.fail "high alpha should remain feasible"

let test_high_r_kills_feasibility () =
  let p' = Swap.Params.with_r_alice (Swap.Params.with_r_bob p 0.2) 0.2 in
  match Swap.Cutoff.p_star_band_endpoints p' with
  | None -> ()
  | Some (lo, hi) ->
    if hi -. lo > 0.3 then
      Alcotest.failf "impatient agents should barely trade: (%g, %g)" lo hi

let test_cutoff_memo_cache_hits () =
  (* Sweeps evaluate the same (params, p_star) repeatedly; the second
     evaluation must come from the cache and be identical. *)
  Swap.Cutoff.clear_caches ();
  let band1 = Swap.Cutoff.p_t2_band p ~p_star:1.93 in
  let hits0, misses0 = Swap.Cutoff.cache_stats () in
  let band2 = Swap.Cutoff.p_t2_band p ~p_star:1.93 in
  let hits1, misses1 = Swap.Cutoff.cache_stats () in
  Alcotest.(check bool) "band identical" true
    (Swap.Intervals.intervals band1 = Swap.Intervals.intervals band2);
  Alcotest.(check int) "repeat band solve is a pure hit" (hits0 + 1) hits1;
  Alcotest.(check int) "no extra misses" misses0 misses1;
  let k3 = Swap.Cutoff.p_t3_low p ~p_star:1.93 in
  let hits2, _ = Swap.Cutoff.cache_stats () in
  let k3' = Swap.Cutoff.p_t3_low p ~p_star:1.93 in
  let hits3, _ = Swap.Cutoff.cache_stats () in
  check_float "memoized t3 cutoff identical" k3 k3';
  Alcotest.(check int) "t3 repeat is a hit" (hits2 + 1) hits3;
  (* a cleared cache recomputes the same value *)
  Swap.Cutoff.clear_caches ();
  check_float "recomputed t3 cutoff identical" k3
    (Swap.Cutoff.p_t3_low p ~p_star:1.93)

(* --- Success rate --------------------------------------------------------------- *)

let test_sr_bounds_and_interior_max () =
  let sr = Swap.Success.analytic p in
  List.iter
    (fun p_star ->
      let v = sr ~p_star in
      if v < 0. || v > 1. then Alcotest.failf "SR out of range: %g" v)
    [ 1.6; 1.8; 2.0; 2.2; 2.4 ];
  (* Concavity in the paper's sense: the max is interior. *)
  let v_lo = sr ~p_star:1.6 and v_mid = sr ~p_star:2.0 and v_hi = sr ~p_star:2.45 in
  if not (v_mid > v_lo && v_mid > v_hi) then
    Alcotest.failf "SR not peaked in the interior: %g %g %g" v_lo v_mid v_hi

let test_sr_increases_with_alpha () =
  let srs =
    Swap.Sensitivity.monotone_in_alpha p ~alphas:[| 0.15; 0.3; 0.5 |] ~p_star:2.
  in
  if not (snd srs.(0) < snd srs.(1) && snd srs.(1) < snd srs.(2)) then
    Alcotest.fail "SR must increase with alpha"

let test_sr_decreases_with_volatility () =
  let sr sigma =
    match Swap.Success.maximize (Swap.Params.with_sigma p sigma) with
    | Some { Swap.Success.sr; _ } -> sr
    | None -> 0.
  in
  let s1 = sr 0.05 and s2 = sr 0.1 and s3 = sr 0.15 in
  if not (s1 > s2 && s2 > s3) then
    Alcotest.failf "max SR must fall with volatility: %g %g %g" s1 s2 s3

let test_sr_increases_with_drift () =
  let v mu = Swap.Success.analytic (Swap.Params.with_mu p mu) ~p_star:2. in
  if not (v 0.01 > v 0. && v 0. > v (-0.01)) then
    Alcotest.fail "SR must increase with drift"

let test_sr_improves_with_faster_chains () =
  let best p' =
    match Swap.Success.maximize p' with
    | Some { Swap.Success.sr; _ } -> sr
    | None -> 0.
  in
  let fast = best (Swap.Params.with_tau_a (Swap.Params.with_tau_b p 2.) 1.) in
  let slow = best (Swap.Params.with_tau_a (Swap.Params.with_tau_b p 8.) 6.) in
  if fast <= slow then
    Alcotest.failf "faster confirmation must raise optimal SR: %g vs %g" fast slow

let test_maximize_inside_band () =
  match (Swap.Success.maximize p, Swap.Cutoff.p_star_band_endpoints p) with
  | Some { Swap.Success.p_star; sr }, Some (lo, hi) ->
    if p_star < lo || p_star > hi then Alcotest.fail "argmax outside band";
    if sr <= 0.5 then Alcotest.failf "default max SR suspiciously low: %g" sr
  | _ -> Alcotest.fail "expected both maximize and band"

(* --- Outcome decomposition ---------------------------------------------------------- *)

let test_outcomes_sum_to_one () =
  List.iter
    (fun p_star ->
      let d = Swap.Outcomes.distribution p ~p_star in
      check_float ~tol:1e-6
        (Printf.sprintf "probabilities at %g" p_star)
        1.
        (d.Swap.Outcomes.success +. d.Swap.Outcomes.bob_balks_low
        +. d.Swap.Outcomes.bob_balks_high +. d.Swap.Outcomes.alice_reneges))
    [ 1.7; 2.0; 2.3 ]

let test_outcomes_match_sr () =
  let d = Swap.Outcomes.distribution p ~p_star:2. in
  check_float ~tol:1e-9 "success term is Eq. 31"
    (Swap.Success.analytic p ~p_star:2.)
    d.Swap.Outcomes.success

let test_outcomes_blame_shifts_with_rate () =
  let share p_star =
    Swap.Outcomes.blame_share_bob (Swap.Outcomes.distribution p ~p_star)
  in
  if not (share 1.7 > 0.7 && share 2.35 < 0.3) then
    Alcotest.fail "blame must shift from Bob (low rates) to Alice (high rates)"

let test_outcomes_mc_decomposition () =
  (* Simulate and classify failures; compare to the analytic split. *)
  let gbm = Swap.Params.gbm p in
  let p_star = 2. in
  let k3 = Swap.Cutoff.p_t3_low p ~p_star in
  let lo, hi =
    match Swap.Cutoff.p_t2_band_endpoints p ~p_star with
    | Some b -> b
    | None -> Alcotest.fail "band expected"
  in
  let rng = Rng.create ~seed:4242 () in
  let trials = 80_000 in
  let counts = [| 0; 0; 0; 0 |] in
  for _ = 1 to trials do
    let p_t2 = Gbm.sample rng gbm ~p0:p.Swap.Params.p0 ~tau:p.Swap.Params.tau_a in
    if p_t2 <= lo then counts.(1) <- counts.(1) + 1
    else if p_t2 >= hi then counts.(2) <- counts.(2) + 1
    else begin
      let p_t3 = Gbm.sample rng gbm ~p0:p_t2 ~tau:p.Swap.Params.tau_b in
      if p_t3 > k3 then counts.(0) <- counts.(0) + 1
      else counts.(3) <- counts.(3) + 1
    end
  done;
  let d = Swap.Outcomes.distribution p ~p_star in
  let expected =
    [| d.Swap.Outcomes.success; d.Swap.Outcomes.bob_balks_low;
       d.Swap.Outcomes.bob_balks_high; d.Swap.Outcomes.alice_reneges |]
  in
  Array.iteri
    (fun i c ->
      let mc = float_of_int c /. float_of_int trials in
      if abs_float (mc -. expected.(i)) > 0.01 then
        Alcotest.failf "component %d: MC %g vs analytic %g" i mc expected.(i))
    counts

let test_outcomes_durations () =
  let dur = Swap.Outcomes.durations p ~p_star:2. in
  check_float ~tol:1e-9 "success hours" 11. dur.Swap.Outcomes.success_hours;
  check_float ~tol:1e-9 "failure hours" 15. dur.Swap.Outcomes.failure_hours;
  if dur.Swap.Outcomes.expected_hours <= 11.
     || dur.Swap.Outcomes.expected_hours >= 15.
  then Alcotest.fail "expected duration must interpolate the two"

(* --- Collateral (Section IV) ------------------------------------------------------ *)

let test_collateral_reduces_to_baseline () =
  let c0 = Swap.Collateral.create p ~q_alice:0. ~q_bob:0. in
  List.iter
    (fun p_star ->
      check_float ~tol:1e-9
        (Printf.sprintf "k3 at %g" p_star)
        (Swap.Cutoff.p_t3_low p ~p_star)
        (Swap.Collateral.p_t3_low c0 ~p_star);
      check_float ~tol:1e-6
        (Printf.sprintf "SR at %g" p_star)
        (Swap.Success.analytic p ~p_star)
        (Swap.Collateral.success_rate c0 ~p_star);
      let k3 = Swap.Cutoff.p_t3_low p ~p_star in
      List.iter
        (fun p_t2 ->
          check_float ~tol:1e-9 "b_t2_cont reduction"
            (Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2)
            (Swap.Collateral.b_t2_cont c0 ~p_star ~p_t2);
          check_float ~tol:1e-9 "a_t2_cont reduction"
            (Swap.Utility.a_t2_cont p ~p_star ~k3 ~p_t2)
            (Swap.Collateral.a_t2_cont c0 ~p_star ~p_t2))
        [ 1.5; 2.; 2.5 ])
    [ 1.8; 2.; 2.2 ]

let test_collateral_lowers_t3_cutoff () =
  let cutoff q =
    Swap.Collateral.p_t3_low (Swap.Collateral.symmetric p ~q) ~p_star:2.
  in
  if not (cutoff 0.5 < cutoff 0.2 && cutoff 0.2 < cutoff 0.) then
    Alcotest.fail "Eq. 34: cutoff must fall with the deposit";
  (* Large enough deposit floors the cutoff at 0 (Alice always reveals). *)
  check_float ~tol:1e-12 "floored at zero" 0. (cutoff 5.)

let test_collateral_sr_monotone_in_q () =
  let sr q =
    Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q) ~p_star:2.
  in
  let values = List.map sr [ 0.; 0.25; 0.5; 1. ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  if not (increasing values) then Alcotest.fail "Fig. 9: SR must rise with Q";
  if List.nth values 3 <= 0.95 then
    Alcotest.fail "Q = 1 should nearly guarantee success under defaults"

let test_collateral_set_anchored_at_zero () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let set = Swap.Collateral.cont_set_t2 c ~p_star:2. in
  Alcotest.(check bool) "near-zero price continues" true
    (Swap.Intervals.contains set 1e-3)

let test_collateral_initiation_sets () =
  let c = Swap.Collateral.symmetric p ~q:0.5 in
  let inter = Swap.Collateral.initiation_set ~rule:Swap.Collateral.Intersection c in
  let union = Swap.Collateral.initiation_set ~rule:Swap.Collateral.Union c in
  let alice = Swap.Collateral.initiation_set ~rule:Swap.Collateral.Alice_only c in
  (* Intersection within union; intersection within each agent's set. *)
  List.iter
    (fun x ->
      if Swap.Intervals.contains inter x then begin
        if not (Swap.Intervals.contains union x) then
          Alcotest.fail "intersection must lie in union";
        if not (Swap.Intervals.contains alice x) then
          Alcotest.fail "intersection must lie in Alice's set"
      end)
    (Array.to_list (Grid.linspace ~lo:1. ~hi:3.5 ~n:60));
  if Swap.Intervals.is_empty inter then
    Alcotest.fail "moderate collateral should keep the swap viable"

let test_premium_between_baseline_and_collateral () =
  let base = Swap.Success.analytic p ~p_star:2. in
  let prem =
    Swap.Premium.success_rate (Swap.Premium.create p ~w:0.5) ~p_star:2.
  in
  let coll =
    Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q:0.5) ~p_star:2.
  in
  if not (base < prem && prem < coll) then
    Alcotest.failf "expected base < premium < collateral: %g %g %g" base prem
      coll

let test_premium_zero_is_baseline () =
  check_float ~tol:1e-6 "w=0 premium"
    (Swap.Success.analytic p ~p_star:2.)
    (Swap.Premium.success_rate (Swap.Premium.create p ~w:0.) ~p_star:2.)

(* --- Presets --------------------------------------------------------------------- *)

let test_presets_matrix_shape () =
  let m = Swap.Presets.standard_matrix () in
  Alcotest.(check int) "4 choose 2 + diagonal" 10 (List.length m);
  List.iter
    (fun (a : Swap.Presets.assessment) ->
      if a.Swap.Presets.swap_hours <= 0. then
        Alcotest.fail "durations must be positive")
    m

let test_presets_fast_chains_beat_slow () =
  let sr tech =
    match (Swap.Presets.assess tech tech).Swap.Presets.best with
    | Some b -> b.Swap.Success.sr
    | None -> 0.
  in
  if not
       (sr Swap.Presets.fast_finality > sr Swap.Presets.btc_like
       && sr Swap.Presets.btc_like > sr Swap.Presets.paper_default)
  then Alcotest.fail "faster finality must raise the achievable SR"

let test_presets_duration_scales_with_tau () =
  let hours tech =
    (Swap.Presets.assess tech tech).Swap.Presets.swap_hours
  in
  if not
       (hours Swap.Presets.fast_finality < hours Swap.Presets.eth_like
       && hours Swap.Presets.eth_like < hours Swap.Presets.btc_like)
  then Alcotest.fail "swap duration must scale with finality time"

let test_presets_eps_constraint_respected () =
  (* Pairing a slow mempool chain_b tech with itself must still satisfy
     Eq. 3 via clamping. *)
  let p' =
    Swap.Presets.pair ~chain_a:Swap.Presets.paper_default
      ~chain_b:Swap.Presets.fast_finality ()
  in
  match Swap.Params.validate p' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "preset pair invalid: %s" e

(* --- Optimal tuning ------------------------------------------------------------------ *)

let test_min_q_for_sr () =
  match Swap.Optimal.min_q_for_sr p ~p_star:2. ~target:0.95 with
  | None -> Alcotest.fail "95% should be reachable"
  | Some { Swap.Optimal.q; sr } ->
    if sr < 0.95 -. 1e-3 then Alcotest.failf "target missed: %g" sr;
    (* Minimality: a noticeably smaller deposit misses the target. *)
    let less = Swap.Optimal.sr_of_q p ~p_star:2. ~q:(q -. 0.05) in
    if less >= 0.95 then Alcotest.fail "returned q is not minimal"

let test_min_q_monotone_in_target () =
  let q_of target =
    match Swap.Optimal.min_q_for_sr p ~p_star:2. ~target with
    | Some { Swap.Optimal.q; _ } -> q
    | None -> infinity
  in
  if not (q_of 0.8 <= q_of 0.9 && q_of 0.9 <= q_of 0.99) then
    Alcotest.fail "required deposit must grow with the target"

let test_welfare_optimum_is_interior () =
  let { Swap.Optimal.q; sr }, surplus = Swap.Optimal.best_q_for_welfare p ~p_star:2. in
  if surplus <= 0. then Alcotest.failf "surplus must be positive: %g" surplus;
  if q < 0. then Alcotest.fail "negative deposit";
  if sr <= Swap.Success.analytic p ~p_star:2. -. 1e-6 then
    Alcotest.fail "welfare optimum should not reduce SR below baseline"

(* --- properties ------------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Eq. 18 cutoff scales linearly in P*" ~count:100
      (float_range 0.5 5.)
      (fun p_star ->
        let k = Swap.Cutoff.p_t3_low p ~p_star in
        let k2 = Swap.Cutoff.p_t3_low p ~p_star:(2. *. p_star) in
        abs_float (k2 -. (2. *. k)) < 1e-9);
    Test.make ~name:"SR in [0,1] across random params" ~count:40
      (quad (float_range 0.05 0.5) (float_range 0.003 0.03)
         (float_range (-0.01) 0.01) (float_range 0.03 0.25))
      (fun (alpha, r, mu, sigma) ->
        let p' =
          Swap.Params.create
            ~alice:{ Swap.Params.alpha; r }
            ~bob:{ Swap.Params.alpha; r }
            ~mu ~sigma ()
        in
        let sr = Swap.Success.analytic p' ~p_star:2. in
        sr >= 0. && sr <= 1. +. 1e-9);
    Test.make ~name:"collateral SR >= baseline SR" ~count:30
      (pair (float_range 0. 1.5) (float_range 1.7 2.3))
      (fun (q, p_star) ->
        let base = Swap.Success.analytic p ~p_star in
        let coll =
          Swap.Collateral.success_rate (Swap.Collateral.symmetric p ~q) ~p_star
        in
        coll >= base -. 1e-6);
    Test.make ~name:"price-level homogeneity of SR" ~count:20
      (pair (float_range 0.3 4.) (float_range 0.8 1.2))
      (fun (scale, ratio) ->
        (* Scaling spot and rate together must not change the SR — the
           law behind the precomputed quote tables. *)
        let p_star = 2. *. ratio in
        let base = Swap.Success.analytic p ~p_star in
        let scaled =
          Swap.Success.analytic
            (Swap.Params.with_p0 p (2. *. scale))
            ~p_star:(p_star *. scale)
        in
        abs_float (base -. scaled) < 1e-6);
    Test.make ~name:"t3 cutoff decreasing in alpha_A" ~count:50
      (pair (float_range 0.05 0.6) (float_range 0.01 0.3))
      (fun (alpha, bump) ->
        let cut a =
          Swap.Cutoff.p_t3_low (Swap.Params.with_alpha_alice p a) ~p_star:2.
        in
        cut (alpha +. bump) < cut alpha);
    Test.make ~name:"timeline satisfies Eq. 12 for random params" ~count:50
      (triple (float_range 0.5 10.) (float_range 0.5 10.) (float_range 0. 0.45))
      (fun (tau_a, tau_b, eps_frac) ->
        let p' =
          Swap.Params.create ~tau_a ~tau_b ~eps_b:(eps_frac *. tau_b) ()
        in
        Swap.Timeline.check p' (Swap.Timeline.ideal p') = Ok ());
    Test.make ~name:"collateral initiation intersection within union" ~count:10
      (float_range 0.1 1.)
      (fun q ->
        let c = Swap.Collateral.symmetric p ~q in
        let inter =
          Swap.Collateral.initiation_set ~rule:Swap.Collateral.Intersection c
        in
        let union =
          Swap.Collateral.initiation_set ~rule:Swap.Collateral.Union c
        in
        Array.for_all
          (fun x ->
            (not (Swap.Intervals.contains inter x))
            || Swap.Intervals.contains union x)
          (Grid.linspace ~lo:0.5 ~hi:5. ~n:40));
    Test.make ~name:"t2 band endpoints bracket positive g" ~count:30
      (float_range 1.6 2.4)
      (fun p_star ->
        match Swap.Cutoff.p_t2_band_endpoints p ~p_star with
        | None -> true
        | Some (lo, hi) ->
          let k3 = Swap.Cutoff.p_t3_low p ~p_star in
          let mid = sqrt (lo *. hi) in
          Swap.Utility.b_t2_cont p ~p_star ~k3 ~p_t2:mid -. mid > -1e-9);
  ]

let () =
  let props = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "swap"
    [
      ( "params",
        [
          Alcotest.test_case "defaults valid" `Quick test_params_defaults_valid;
          Alcotest.test_case "validation rules" `Quick test_params_validation;
          Alcotest.test_case "create rejects invalid" `Quick
            test_params_create_rejects;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "Eq. 13 schedule" `Quick test_timeline_eq13;
          Alcotest.test_case "satisfies Eq. 12" `Quick
            test_timeline_satisfies_eq12;
          Alcotest.test_case "violations caught" `Quick
            test_timeline_check_catches_violation;
          Alcotest.test_case "start offset" `Quick test_timeline_offset;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "membership" `Quick test_intervals_basic;
          Alcotest.test_case "validation" `Quick test_intervals_validation;
          Alcotest.test_case "set operations" `Quick test_intervals_set_ops;
          Alcotest.test_case "from sign changes" `Quick
            test_intervals_from_signs;
        ] );
      ( "utility",
        [
          Alcotest.test_case "Alice t3 (Eqs. 14, 16)" `Quick
            test_a_t3_utilities;
          Alcotest.test_case "Bob t3 (Eqs. 15, 17)" `Quick test_b_t3_utilities;
          Alcotest.test_case "Eq. 20 vs quadrature" `Quick
            test_a_t2_cont_vs_quadrature;
          Alcotest.test_case "Eq. 21 vs quadrature" `Quick
            test_b_t2_cont_vs_quadrature;
        ] );
      ( "cutoff",
        [
          Alcotest.test_case "Eq. 18 closed form" `Quick
            test_p_t3_low_closed_form;
          Alcotest.test_case "t2 band endpoints are roots" `Quick
            test_p_t2_band_roots;
          Alcotest.test_case "tiny alpha shrinks the band" `Quick
            test_p_t2_band_empty_for_tiny_alpha;
          Alcotest.test_case "Eq. 29 reproduction" `Quick
            test_eq29_feasible_band;
          Alcotest.test_case "alpha widens feasibility" `Quick
            test_feasible_band_widens_with_alpha;
          Alcotest.test_case "impatience kills feasibility" `Quick
            test_high_r_kills_feasibility;
          Alcotest.test_case "memo cache hits on repeats" `Quick
            test_cutoff_memo_cache_hits;
        ] );
      ( "success",
        [
          Alcotest.test_case "bounds and interior max" `Quick
            test_sr_bounds_and_interior_max;
          Alcotest.test_case "monotone in alpha" `Quick
            test_sr_increases_with_alpha;
          Alcotest.test_case "falls with volatility" `Quick
            test_sr_decreases_with_volatility;
          Alcotest.test_case "rises with drift" `Quick
            test_sr_increases_with_drift;
          Alcotest.test_case "faster chains help" `Quick
            test_sr_improves_with_faster_chains;
          Alcotest.test_case "argmax inside band" `Quick
            test_maximize_inside_band;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "probabilities sum to 1" `Quick
            test_outcomes_sum_to_one;
          Alcotest.test_case "success term is Eq. 31" `Quick
            test_outcomes_match_sr;
          Alcotest.test_case "blame shifts with the rate" `Quick
            test_outcomes_blame_shifts_with_rate;
          Alcotest.test_case "Monte-Carlo decomposition" `Slow
            test_outcomes_mc_decomposition;
          Alcotest.test_case "durations" `Quick test_outcomes_durations;
        ] );
      ( "collateral",
        [
          Alcotest.test_case "q = 0 reduces to baseline" `Quick
            test_collateral_reduces_to_baseline;
          Alcotest.test_case "Eq. 34 cutoff falls with Q" `Quick
            test_collateral_lowers_t3_cutoff;
          Alcotest.test_case "Fig. 9: SR monotone in Q" `Quick
            test_collateral_sr_monotone_in_q;
          Alcotest.test_case "t2 set anchored at zero" `Quick
            test_collateral_set_anchored_at_zero;
          Alcotest.test_case "initiation set algebra" `Quick
            test_collateral_initiation_sets;
          Alcotest.test_case "premium between base and collateral" `Quick
            test_premium_between_baseline_and_collateral;
          Alcotest.test_case "w = 0 premium is baseline" `Quick
            test_premium_zero_is_baseline;
        ] );
      ( "presets",
        [
          Alcotest.test_case "matrix shape" `Slow test_presets_matrix_shape;
          Alcotest.test_case "fast chains beat slow" `Quick
            test_presets_fast_chains_beat_slow;
          Alcotest.test_case "duration scales with tau" `Quick
            test_presets_duration_scales_with_tau;
          Alcotest.test_case "Eq. 3 respected" `Quick
            test_presets_eps_constraint_respected;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "minimal q for target SR" `Quick test_min_q_for_sr;
          Alcotest.test_case "q monotone in target" `Quick
            test_min_q_monotone_in_target;
          Alcotest.test_case "welfare optimum" `Quick
            test_welfare_optimum_is_interior;
        ] );
      ("properties", props);
    ]
