(* Tests for lib/swapgraph: topology generators (seed determinism and
   well-formedness), the Herlihy timelock assignment (including exact
   agreement with the historical Multihop cycle schedule), jobs
   invariance of the Monte-Carlo estimator and the topology sweep, the
   graph game, the route search and full protocol execution. *)

open Swapgraph

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float ?(tol = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let p = Swap.Params.defaults

(* --- topology generators --------------------------------------------- *)

let test_topology_determinism () =
  List.iter
    (fun seed ->
      let a = Topology.generate Topology.Random ~n:7 ~seed in
      let b = Topology.generate Topology.Random ~n:7 ~seed in
      check_bool "same seed, same graph" true (Graph.equal a b);
      check_str "same seed, same signature" (Graph.signature a)
        (Graph.signature b))
    [ 0; 1; 42; 0x9af ];
  let sigs =
    List.map
      (fun seed ->
        Graph.signature (Topology.generate Topology.Random ~n:7 ~seed))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  let distinct = List.sort_uniq compare sigs in
  check_bool "different seeds explore different graphs" true
    (List.length distinct > 1);
  (* Structured families ignore the seed entirely. *)
  check_str "cycle ignores seed"
    (Graph.signature (Topology.generate Topology.Cycle ~n:5 ~seed:1))
    (Graph.signature (Topology.generate Topology.Cycle ~n:5 ~seed:99))

let test_topology_well_formed () =
  let cases =
    List.concat_map
      (fun family ->
        let sizes =
          match family with Topology.Bridge -> [ 5; 6; 8 ] | _ -> [ 2; 3; 6; 8 ]
        in
        List.concat_map
          (fun n -> List.map (fun seed -> (family, n, seed)) [ 0; 17 ])
          sizes)
      Topology.all_families
  in
  List.iter
    (fun (family, n, seed) ->
      let name = Topology.family_to_string family in
      let g = Topology.generate family ~n ~seed in
      check_int (Printf.sprintf "%s/%d: n" name n) n (Graph.n g);
      check_int (Printf.sprintf "%s/%d: leader at depth 0" name n) 0
        (Graph.depth g (Graph.leader g));
      Array.iteri
        (fun v d ->
          check_bool
            (Printf.sprintf "%s/%d: vertex %d reachable" name n v)
            true
            (d >= 0 && d <= Graph.max_depth g))
        (Graph.depths g);
      (* Every vertex both gives and receives (Graph.make enforces it,
         so the generators must have produced a valid arc set). *)
      for v = 0 to n - 1 do
        check_bool (Printf.sprintf "%s/%d: %d gives" name n v) true
          (Graph.out_arcs g v <> []);
        check_bool (Printf.sprintf "%s/%d: %d receives" name n v) true
          (Graph.in_arcs g v <> [])
      done)
    cases

let test_topology_shapes () =
  let c = Topology.cycle 5 in
  check_int "cycle: one arc per party" 5 (Graph.arc_count c);
  Array.iteri
    (fun v d -> check_int (Printf.sprintf "cycle: depth of %d" v) v d)
    (Graph.depths c);
  let s = Topology.star 6 in
  check_int "star: two arcs per spoke" 10 (Graph.arc_count s);
  for v = 1 to 5 do
    check_int (Printf.sprintf "star: spoke %d at depth 1" v) 1
      (Graph.depth s v)
  done;
  let b = Topology.bridge 7 in
  check_bool "bridge: leader bridges two rings" true
    (List.length (Graph.out_arcs b (Graph.leader b)) = 2);
  Alcotest.check_raises "bridge needs 5 parties"
    (Invalid_argument "Topology.bridge: need at least 5 parties") (fun () ->
      ignore (Topology.bridge 4))

(* --- Herlihy timelocks ------------------------------------------------ *)

let test_timelock_matches_multihop () =
  List.iter
    (fun parties ->
      let spec = Swap.Multihop.make ~parties p in
      let expected = Swap.Multihop.expiry_schedule spec in
      let s = Swap.Graphlink.schedule p (Topology.cycle parties) in
      check_int
        (Printf.sprintf "%d-cycle: one expiry per leg" parties)
        parties
        (Array.length s.Timelock.expiry);
      Array.iteri
        (fun i e ->
          check_float
            (Printf.sprintf "%d-cycle: expiry of leg %d" parties i)
            e s.Timelock.expiry.(i))
        expected;
      check_float
        (Printf.sprintf "%d-cycle: lock phase" parties)
        (Swap.Multihop.lock_phase_hours spec)
        s.Timelock.lock_phase_end)
    [ 2; 3; 4; 5; 8 ]

let test_timelock_validates_across_families () =
  List.iter
    (fun family ->
      let n = match family with Topology.Bridge -> 7 | _ -> 6 in
      let g = Topology.generate family ~n ~seed:5 in
      List.iter
        (fun slack ->
          let s = Timelock.assign g ~tau:4. ~eps:1. ~slack in
          match Timelock.validate g s with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s slack=%g rejected: %s"
                (Topology.family_to_string family)
                slack e)
        [ 0.; 0.5; 2. ])
    Topology.all_families

let test_timelock_staggering () =
  let g = Topology.generate Topology.Random ~n:8 ~seed:23 in
  let s = Timelock.assign g ~tau:4. ~eps:1. ~slack:0.5 in
  (* Expiries strictly decrease as the sender sits deeper: a party can
     always claim its incoming leg after its outgoing leg was claimed. *)
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if Graph.depth g a.Graph.src < Graph.depth g b.Graph.src then
            check_bool
              (Printf.sprintf "expiry(%d) > expiry(%d)" i j)
              true
              (s.Timelock.expiry.(i) > s.Timelock.expiry.(j)))
        (Graph.arcs g))
    (Graph.arcs g);
  Alcotest.check_raises "tau must be positive"
    (Invalid_argument "Timelock.assign: tau must be > 0") (fun () ->
      ignore (Timelock.assign g ~tau:0. ~eps:1.))

(* --- Monte Carlo and sweep: jobs invariance --------------------------- *)

let test_mc_jobs_invariance () =
  let g = Topology.generate Topology.Random ~n:6 ~seed:3 in
  let s = Swap.Graphlink.schedule p g in
  let policy = Swap.Graphlink.uniform_policy p ~p_star:2. in
  let r1 = Mc.estimate ~trials:2000 ~seed:11 ~jobs:1 g s policy in
  let r4 = Mc.estimate ~trials:2000 ~seed:11 ~jobs:4 g s policy in
  check_int "trials" r1.Mc.trials r4.Mc.trials;
  check_int "successes identical" r1.Mc.success r4.Mc.success;
  check_float "rate identical" r1.Mc.rate r4.Mc.rate;
  check_int "reveal aborts identical" r1.Mc.aborted_reveal
    r4.Mc.aborted_reveal;
  Array.iteri
    (fun i c ->
      check_int (Printf.sprintf "lock aborts at %d" i) c
        r4.Mc.aborted_lock.(i))
    r1.Mc.aborted_lock;
  check_bool "rate is a probability" true (r1.Mc.rate >= 0. && r1.Mc.rate <= 1.)

let test_sweep_jobs_invariance () =
  let specs =
    [
      { Sweep.family = Topology.Cycle; size = 4; slack = 0.; topo_seed = 0 };
      { Sweep.family = Topology.Star; size = 5; slack = 1.; topo_seed = 0 };
      { Sweep.family = Topology.Bridge; size = 7; slack = 0.5; topo_seed = 0 };
      { Sweep.family = Topology.Random; size = 6; slack = 0.; topo_seed = 1 };
      { Sweep.family = Topology.Random; size = 6; slack = 0.; topo_seed = 2 };
      { Sweep.family = Topology.Random; size = 8; slack = 2.; topo_seed = 3 };
    ]
  in
  let run jobs =
    Sweep.run ~jobs ~trials:500 ~seed:7 ~tau:p.Swap.Params.tau_b
      ~eps:p.Swap.Params.eps_b
      ~policy:(Swap.Graphlink.depth_aware_policy p ~p_star:2.)
      ~payoffs:(Swap.Graphlink.payoffs p) specs
  in
  let r1 = run 1 and r4 = run 4 in
  check_int "row count" (List.length specs) (List.length r1);
  List.iter2
    (fun (a : Sweep.row) (b : Sweep.row) ->
      let tag =
        Printf.sprintf "%s/%d/seed=%d"
          (Topology.family_to_string a.Sweep.spec.Sweep.family)
          a.Sweep.spec.Sweep.size a.Sweep.spec.Sweep.topo_seed
      in
      check_bool (tag ^ ": same graph") true
        (Graph.equal a.Sweep.graph b.Sweep.graph);
      check_float (tag ^ ": sr") a.Sweep.sr b.Sweep.sr;
      check_float (tag ^ ": exposure") a.Sweep.max_exposure_hours
        b.Sweep.max_exposure_hours;
      check_bool (tag ^ ": equilibrium") a.Sweep.equilibrium_success
        b.Sweep.equilibrium_success;
      check_bool (tag ^ ": deviator") true
        (a.Sweep.deviator = b.Sweep.deviator);
      check_bool (tag ^ ": sr is a probability") true
        (a.Sweep.sr >= 0. && a.Sweep.sr <= 1.))
    r1 r4

(* --- graph game ------------------------------------------------------- *)

let test_game_conforming_equilibrium () =
  List.iter
    (fun (name, g) ->
      let s = Swap.Graphlink.schedule p g in
      let a = Game.analyse g (Swap.Graphlink.payoffs p g s) in
      check_bool (name ^ ": conforming play survives") true a.Game.success;
      check_bool (name ^ ": no deviator") true (a.Game.deviator = None);
      Array.iteri
        (fun v eq ->
          check_float
            (Printf.sprintf "%s: equilibrium value of %d" name v)
            a.Game.conforming.(v) eq)
        a.Game.equilibrium)
    [ ("cycle-4", Topology.cycle 4); ("star-5", Topology.star 5) ]

let test_game_deviation_under_griefing_cost () =
  (* Crank the time-value rate: locked collateral now costs more than
     the success premium pays, so some party rationally exits. *)
  let expensive = Swap.Params.with_r_bob p 5. in
  let g = Topology.cycle 4 in
  let s = Swap.Graphlink.schedule expensive g in
  let a = Game.analyse g (Swap.Graphlink.payoffs expensive g s) in
  check_bool "conforming play collapses" false a.Game.success;
  check_bool "a deviator is identified" true (a.Game.deviator <> None)

let test_griefing_value_scales_with_exposure () =
  let g = Topology.cycle 5 in
  let s = Swap.Graphlink.schedule p g in
  let exposure = Timelock.exposure_hours g s in
  let griefing = Swap.Graphlink.griefing_value p g s in
  Array.iteri
    (fun v e ->
      check_float
        (Printf.sprintf "griefing(%d) = r * exposure" v)
        (p.Swap.Params.bob.Swap.Params.r *. e)
        griefing.(v))
    exposure

(* --- route search ----------------------------------------------------- *)

let universe =
  Router.make_exn
    [
      { Router.src = "A"; dst = "B"; sr = 0.9; rate = 2. };
      { Router.src = "B"; dst = "C"; sr = 0.9; rate = 3. };
      { Router.src = "A"; dst = "C"; sr = 0.5; rate = 5. };
    ]

let test_router_best_path () =
  (match Router.best universe ~from_tok:"A" ~to_tok:"C" ~max_hops:2 with
  | Ok { Router.hops; sr; rate } ->
      check_bool "two-hop route wins on SR product" true
        (hops = [ "A"; "B"; "C" ]);
      check_float "sr product" 0.81 sr;
      check_float "rate product" 6. rate
  | Error _ -> Alcotest.fail "expected a route");
  match Router.best universe ~from_tok:"A" ~to_tok:"C" ~max_hops:1 with
  | Ok { Router.hops; sr; _ } ->
      check_bool "hop bound forces the direct edge" true (hops = [ "A"; "C" ]);
      check_float "direct sr" 0.5 sr
  | Error _ -> Alcotest.fail "expected the direct route"

let test_router_tie_breaking () =
  (* Two 2-hop paths with identical SR products: the lexicographically
     smaller token path must win, deterministically. *)
  let u =
    Router.make_exn
      [
        { Router.src = "A"; dst = "B"; sr = 0.9; rate = 1. };
        { Router.src = "B"; dst = "Z"; sr = 0.9; rate = 1. };
        { Router.src = "A"; dst = "C"; sr = 0.9; rate = 1. };
        { Router.src = "C"; dst = "Z"; sr = 0.9; rate = 1. };
      ]
  in
  match Router.best u ~from_tok:"A" ~to_tok:"Z" ~max_hops:3 with
  | Ok { Router.hops; _ } ->
      check_bool "lexicographic tie break" true (hops = [ "A"; "B"; "Z" ])
  | Error _ -> Alcotest.fail "expected a route"

let test_router_errors () =
  (match Router.best universe ~from_tok:"DOGE" ~to_tok:"C" ~max_hops:4 with
  | Error (Router.Unknown_token "DOGE") -> ()
  | _ -> Alcotest.fail "expected Unknown_token DOGE");
  (match Router.best universe ~from_tok:"C" ~to_tok:"A" ~max_hops:4 with
  | Error Router.No_route -> ()
  | _ -> Alcotest.fail "expected No_route against the edge direction");
  (match Router.best universe ~from_tok:"A" ~to_tok:"A" ~max_hops:4 with
  | Error Router.No_route -> ()
  | _ -> Alcotest.fail "expected No_route for from = to");
  match Router.make [ { Router.src = "A"; dst = "B"; sr = 1.5; rate = 2. } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "SR above 1 must be rejected"

let test_default_universe_probabilities () =
  let u = Swap.Graphlink.default_universe () in
  check_bool "universe is nonempty" true (Router.edges u <> []);
  List.iter
    (fun { Router.src; dst; sr; rate } ->
      check_bool (Printf.sprintf "%s->%s: sr in [0,1]" src dst) true
        (sr >= 0. && sr <= 1.);
      check_bool (Printf.sprintf "%s->%s: positive rate" src dst) true
        (rate > 0.))
    (Router.edges u)

(* --- full protocol execution ------------------------------------------ *)

let test_exec_happy_path () =
  let g = Topology.star 4 in
  let s = Swap.Graphlink.schedule p g in
  let r = Exec.run g s in
  check_bool "star executes to Success" true (r.Exec.outcome = Exec.Success);
  Array.iteri
    (fun v (out, inc) ->
      check_bool (Printf.sprintf "party %d pays out" v) true (out < 0.);
      check_bool (Printf.sprintf "party %d is paid" v) true (inc > 0.))
    r.Exec.deltas;
  check_bool "trace is populated" true (r.Exec.trace <> [])

let test_exec_abort () =
  let g = Topology.cycle 4 in
  let s = Swap.Graphlink.schedule p g in
  let decisions v ~price:_ = if v = 2 then Exec.Stop else Exec.Cont in
  let r = Exec.run ~decisions g s in
  check_bool "party 2 aborts the lock phase" true
    (r.Exec.outcome = Exec.Abort_at_lock 2);
  Array.iter
    (fun (out, inc) ->
      check_float "no asset moved out" 0. out;
      check_float "no asset moved in" 0. inc)
    r.Exec.deltas

let () =
  Alcotest.run "swapgraph"
    [
      ( "topology",
        [
          Alcotest.test_case "seed determinism" `Quick
            test_topology_determinism;
          Alcotest.test_case "well-formedness" `Quick
            test_topology_well_formed;
          Alcotest.test_case "family shapes" `Quick test_topology_shapes;
        ] );
      ( "timelock",
        [
          Alcotest.test_case "matches Multihop on cycles" `Quick
            test_timelock_matches_multihop;
          Alcotest.test_case "validates across families" `Quick
            test_timelock_validates_across_families;
          Alcotest.test_case "staggered expiries" `Quick
            test_timelock_staggering;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "mc jobs invariance" `Quick
            test_mc_jobs_invariance;
          Alcotest.test_case "sweep jobs invariance" `Quick
            test_sweep_jobs_invariance;
        ] );
      ( "game",
        [
          Alcotest.test_case "conforming equilibrium" `Quick
            test_game_conforming_equilibrium;
          Alcotest.test_case "deviation under griefing cost" `Quick
            test_game_deviation_under_griefing_cost;
          Alcotest.test_case "griefing value" `Quick
            test_griefing_value_scales_with_exposure;
        ] );
      ( "router",
        [
          Alcotest.test_case "best path" `Quick test_router_best_path;
          Alcotest.test_case "tie breaking" `Quick test_router_tie_breaking;
          Alcotest.test_case "errors" `Quick test_router_errors;
          Alcotest.test_case "default universe" `Quick
            test_default_universe_probabilities;
        ] );
      ( "exec",
        [
          Alcotest.test_case "happy path" `Quick test_exec_happy_path;
          Alcotest.test_case "abort at lock" `Quick test_exec_abort;
        ] );
    ]
